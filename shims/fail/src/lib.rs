//! Minimal offline failpoint registry — the workspace's fault-injection
//! switchboard, modelled on the crates.io `fail` crate but rebuilt here so
//! the tree keeps building with no network access.
//!
//! A **failpoint** is a named site in production code (`service.write`,
//! `shard.submit`, `container.frame`, ...) that asks the registry what — if
//! anything — to inject before doing its real work.  With no configuration
//! the whole machinery collapses to one relaxed atomic load and a branch,
//! so instrumented hot paths cost nothing in normal operation.
//!
//! Configuration comes from the `GLD_FAILPOINTS` environment variable (read
//! once, on first use) or programmatically via [`configure`] (tests):
//!
//! ```text
//! GLD_FAILPOINTS="service.write=err_io:10%;shard.submit=delay:50ms;container.frame=corrupt:1"
//! ```
//!
//! Each `name=action` pair arms one failpoint.  Actions:
//!
//! | action     | effect at the instrumented site                          |
//! |------------|----------------------------------------------------------|
//! | `err_io`   | a hard I/O error (`ErrorKind::Other`)                    |
//! | `err_intr` | a transient `ErrorKind::Interrupted` (callers retry)     |
//! | `delay:DUR`| sleep for `DUR` (`50ms`, `2s`)                           |
//! | `corrupt`  | flip a byte in the data the site is handling             |
//! | `panic`    | panic at the site (exercises crash paths such as the     |
//! |            | flight recorder's panic-hook dump)                       |
//! | `off`      | disarm (useful to override an inherited env var)         |
//!
//! Any action takes optional modifiers, `:`-separated in any order:
//! `P%` fires with probability `P` (deterministic xorshift stream, seeded
//! by `GLD_FAILPOINTS_SEED`), and a bare integer `N` caps the total number
//! of firings.  `corrupt:1` therefore means "corrupt exactly once".
//!
//! Every firing is counted — [`total_hits`] and [`hits`] let services
//! surface fault counters through their own metrics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// What an armed failpoint injects when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// A hard I/O failure: the site should behave as if the underlying
    /// operation returned `ErrorKind::Other`.
    ErrIo,
    /// A transient failure: the site should behave as if the operation
    /// returned `ErrorKind::Interrupted` (well-written loops retry).
    ErrInterrupted,
    /// Sleep for the given duration before the real operation.
    Delay(Duration),
    /// Flip a byte in whatever data the site is producing or consuming.
    Corrupt,
}

/// One armed failpoint's state.
#[derive(Clone, Debug)]
struct Point {
    /// `None` is the `panic` pseudo-action, handled inside [`check`] so
    /// every instrumented site supports it without a match arm.
    action: Option<Action>,
    /// Firing probability in [0, 1] (1 = always).
    probability: f64,
    /// Remaining firings, `None` = unlimited.
    remaining: Option<u64>,
    hits: u64,
}

/// The armed configuration plus the deterministic jitter stream.
#[derive(Debug, Default)]
struct Registry {
    points: HashMap<String, Point>,
    rng: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static TOTAL_HITS: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("GLD_FAILPOINTS") {
            // NOT `configure` — that re-arms ENV_INIT's own `Once` from
            // inside this closure, and a recursive `call_once` deadlocks.
            if let Err(e) = install(&spec) {
                // A typo'd spec must be loud, not silently fault-free.
                eprintln!("GLD_FAILPOINTS ignored: {e}");
            }
        }
    });
}

/// Whether any failpoint is armed.  This is the fast path every
/// instrumented site takes: one relaxed load (after a one-time env parse).
pub fn active() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Parses and installs a failpoint spec (see the crate docs for the
/// grammar), replacing any previous configuration.  An empty spec disarms
/// everything.  Mainly for tests; production configuration arrives through
/// the `GLD_FAILPOINTS` environment variable.
pub fn configure(spec: &str) -> Result<(), String> {
    // Make sure the env `Once` is burned so a later `active()` cannot
    // clobber a programmatic configuration with the env var.
    ENV_INIT.call_once(|| {});
    install(spec)
}

/// The body of [`configure`], shared with the one-time env-var bootstrap.
/// Must never touch `ENV_INIT`: [`init_from_env`] calls this from inside
/// the `Once` closure, where re-entering `call_once` is a self-deadlock.
fn install(spec: &str) -> Result<(), String> {
    let mut points = HashMap::new();
    for pair in spec.split(';') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, action) = pair
            .split_once('=')
            .ok_or_else(|| format!("failpoint {pair:?} is not name=action"))?;
        match parse_action(action.trim())? {
            Some(point) => {
                points.insert(name.trim().to_string(), point);
            }
            None => {
                points.remove(name.trim());
            }
        }
    }
    let seed = std::env::var("GLD_FAILPOINTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15u64);
    let armed = !points.is_empty();
    let mut registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    registry.points = points;
    registry.rng = seed | 1;
    drop(registry);
    ENABLED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Parses one action spec (`err_io:10%`, `delay:50ms`, `corrupt:1`, `off`).
/// `Ok(None)` means the point is explicitly disarmed.
fn parse_action(spec: &str) -> Result<Option<Point>, String> {
    let mut tokens = spec.split(':');
    let kind = tokens.next().unwrap_or_default();
    let mut delay = None;
    let mut probability = 1.0f64;
    let mut remaining = None;
    for token in tokens {
        let token = token.trim();
        if let Some(percent) = token.strip_suffix('%') {
            let p: f64 = percent
                .parse()
                .map_err(|_| format!("bad probability {token:?}"))?;
            if !(0.0..=100.0).contains(&p) {
                return Err(format!("probability {token:?} outside 0..=100"));
            }
            probability = p / 100.0;
        } else if let Some(ms) = token.strip_suffix("ms") {
            let v: u64 = ms.parse().map_err(|_| format!("bad duration {token:?}"))?;
            delay = Some(Duration::from_millis(v));
        } else if let Some(s) = token.strip_suffix('s') {
            let v: u64 = s.parse().map_err(|_| format!("bad duration {token:?}"))?;
            delay = Some(Duration::from_secs(v));
        } else if let Ok(count) = token.parse::<u64>() {
            remaining = Some(count);
        } else {
            return Err(format!("unknown action modifier {token:?}"));
        }
    }
    let action = match kind {
        "off" => return Ok(None),
        "err_io" => Some(Action::ErrIo),
        "err_intr" | "err_interrupted" => Some(Action::ErrInterrupted),
        "delay" => Some(Action::Delay(
            delay.ok_or("delay takes a duration, e.g. delay:50ms")?,
        )),
        "corrupt" => Some(Action::Corrupt),
        "panic" => None,
        other => return Err(format!("unknown failpoint action {other:?}")),
    };
    Ok(Some(Point {
        action,
        probability,
        remaining,
        hits: 0,
    }))
}

/// Asks whether the failpoint `name` fires right now.  `None` when the
/// registry is disabled, the point is not armed, its probability says not
/// this time, or its firing budget is spent.  A returned action is counted
/// as one hit.
pub fn check(name: &str) -> Option<Action> {
    if !active() {
        return None;
    }
    let mut registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    // Advance the shared xorshift stream for the roll.
    registry.rng ^= registry.rng << 13;
    registry.rng ^= registry.rng >> 7;
    registry.rng ^= registry.rng << 17;
    let roll = (registry.rng >> 11) as f64 / (1u64 << 53) as f64;
    let point = registry.points.get_mut(name)?;
    if point.probability < 1.0 && roll >= point.probability {
        return None;
    }
    if let Some(remaining) = &mut point.remaining {
        if *remaining == 0 {
            return None;
        }
        *remaining -= 1;
    }
    point.hits += 1;
    TOTAL_HITS.fetch_add(1, Ordering::Relaxed);
    let action = point.action;
    if action.is_none() {
        // The `panic` pseudo-action: unwind from here so the site never
        // needs its own arm.  The registry lock is released first — a
        // panic hook dumping diagnostics may want `total_hits`.
        drop(registry);
        panic!("injected panic at failpoint {name}");
    }
    action
}

/// [`check`] specialised for I/O sites: `Delay` sleeps here and injects
/// nothing, `ErrIo`/`ErrInterrupted` come back as the matching
/// `std::io::Error` (tagged "injected fault" so diagnostics are
/// unmistakable), and `Corrupt` is returned as `None` — byte-flipping is
/// site-specific, so sites that support it should call [`check`] directly.
pub fn io_fault(name: &str) -> Option<std::io::Error> {
    match check(name)? {
        Action::ErrIo => Some(std::io::Error::other(format!("injected fault at {name}"))),
        Action::ErrInterrupted => Some(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected fault at {name}"),
        )),
        Action::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        Action::Corrupt => None,
    }
}

/// Total firings across every failpoint since process start (monotonic,
/// survives reconfiguration) — what services surface as their
/// faults-injected counter.
pub fn total_hits() -> u64 {
    TOTAL_HITS.load(Ordering::Relaxed)
}

/// Firings of one named failpoint under the *current* configuration
/// (reset by [`configure`]).
pub fn hits(name: &str) -> u64 {
    let registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    registry.points.get(name).map_or(0, |p| p.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so every test goes through this one
    // entry point to avoid interleaving configurations.
    fn with_config<R>(spec: &str, f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        configure(spec).expect("test spec parses");
        let out = f();
        configure("").expect("disarm");
        out
    }

    #[test]
    fn disabled_registry_fires_nothing() {
        with_config("", || {
            assert!(!active());
            assert_eq!(check("service.write"), None);
        });
    }

    #[test]
    fn always_on_point_fires_and_counts() {
        with_config("service.write=err_io", || {
            assert!(active());
            assert_eq!(check("service.write"), Some(Action::ErrIo));
            assert_eq!(check("service.read"), None, "unarmed points stay quiet");
            assert_eq!(hits("service.write"), 1);
            assert!(total_hits() >= 1);
        });
    }

    #[test]
    fn count_cap_limits_firings() {
        with_config("container.frame=corrupt:2", || {
            assert_eq!(check("container.frame"), Some(Action::Corrupt));
            assert_eq!(check("container.frame"), Some(Action::Corrupt));
            assert_eq!(check("container.frame"), None, "budget spent");
            assert_eq!(hits("container.frame"), 2);
        });
    }

    #[test]
    fn probability_is_roughly_respected() {
        with_config("shard.submit=delay:1ms:25%", || {
            let fired = (0..400).filter(|_| check("shard.submit").is_some()).count();
            assert!(
                (40..=160).contains(&fired),
                "25% over 400 trials fired {fired} times"
            );
        });
    }

    #[test]
    fn durations_parse_in_ms_and_s() {
        with_config("a=delay:50ms;b=delay:2s", || {
            assert_eq!(check("a"), Some(Action::Delay(Duration::from_millis(50))));
            assert_eq!(check("b"), Some(Action::Delay(Duration::from_secs(2))));
        });
    }

    #[test]
    fn off_disarms_and_bad_specs_are_typed_errors() {
        with_config("a=err_io;a=off", || {
            assert!(!active(), "the later `off` wins and nothing is armed");
        });
        assert!(configure("nonsense").is_err());
        assert!(configure("a=explode").is_err());
        assert!(configure("a=delay").is_err(), "delay needs a duration");
        assert!(configure("a=err_io:200%").is_err());
        configure("").unwrap();
    }
}
