//! A hand-rolled HTTP/1.0 metrics responder on a dedicated thread.
//!
//! [`serve`] binds a listener and answers `GET /metrics` (or `/`) with the
//! renderer's output as `text/plain; version=0.0.4` — the Prometheus text
//! exposition content type — closing each connection after one response
//! (HTTP/1.0 semantics, no keep-alive state to manage).  The accept loop
//! is non-blocking with a short park, so [`MetricsServer::stop`] (or drop)
//! joins promptly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The renderer a metrics server calls per scrape.
pub type Renderer = Arc<dyn Fn() -> String + Send + Sync>;

/// A running metrics endpoint; dropping it stops and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `render()` to every scrape on a dedicated
/// thread named `gld-obs-metrics`.
pub fn serve(addr: impl ToSocketAddrs, render: Renderer) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("gld-obs-metrics".into())
        .spawn(move || accept_loop(&listener, &stop_flag, &render))
        .expect("spawn metrics thread");
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, render: &Renderer) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One short-lived scrape at a time: Prometheus polls are
                // sparse, and serialising them keeps the thread budget at 1.
                let _ = answer(stream, render);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn answer(mut stream: TcpStream, render: &Renderer) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    // Read until the end of the request head (or 8 KiB — more is abuse).
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let mut parts = request_line.split(|&b| b == b' ');
    let method = parts.next().unwrap_or(&[]);
    let path = parts.next().unwrap_or(&[]);
    let (status, body) = if method != b"GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == b"/metrics" || path == b"/" {
        ("200 OK", render())
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_the_rendered_text_and_404s_elsewhere() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(|| "demo_total 42\n".to_string()) as Renderer,
        )
        .unwrap();
        let addr = server.local_addr();
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.ends_with("demo_total 42\n"));
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        server.stop();
    }
}
