//! # gld-baselines
//!
//! Rule-based error-bounded lossy compressors used as the paper's
//! non-learned baselines:
//!
//! * [`szlike::SzCompressor`] — a prediction-based coder in the spirit of
//!   SZ3: a Lorenzo/interpolation predictor over the reconstructed
//!   neighbourhood, uniform quantisation of the prediction residual with a
//!   user-supplied absolute error bound, and arithmetic coding of the
//!   quantisation codes.
//! * [`zfplike::ZfpLikeCompressor`] — a transform-based coder in the spirit
//!   of ZFP: the data is tiled into small blocks, each block is decorrelated
//!   with the ZFP lifting transform, and coefficients are uniformly
//!   quantised with a conservatively chosen step so the reconstruction stays
//!   inside the requested bound.
//!
//! Both implement the [`ErrorBoundedCompressor`] trait so the benchmark
//! harness can sweep them alongside the learned pipeline.  Absolute ratios
//! differ from the heavily engineered C++ codecs, but the relevant ordering —
//! prediction-based beats transform-based on smooth scientific fields, and
//! both trail learned compressors at matched NRMSE — is preserved, which is
//! what the paper's Figure 3 relies on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod header;
pub mod reference;
pub mod szlike;
pub mod zfplike;

pub use header::BlockHeader;
pub use szlike::{SzCompressor, SzScratch};
pub use zfplike::{ZfpLikeCompressor, ZfpScratch};

use gld_entropy::HistogramModel;
use gld_tensor::Tensor;
use std::borrow::Cow;
use std::fmt;

/// `model_len` sentinel value marking a frame whose histogram model lives in
/// the container's shared entropy profile instead of in the frame itself —
/// the cross-frame model reuse of container v4.  Frames written without a
/// shared model always carry a real length here (model tables are far below
/// 4 GiB), so the sentinel is unambiguous.
pub const SHARED_MODEL_SENTINEL: u32 = u32::MAX;

/// One frame's resolved model section: the model to code symbols with and,
/// for shared-profile frames, the **overflow symbol** (the shared model's
/// [`HistogramModel::min_symbol`], by convention the escape bin added
/// through [`HistogramModel::with_escape`]).  A code equal to the overflow
/// symbol, or one the model cannot represent, is written as the overflow
/// symbol followed by the raw 32-bit value — the same bypass idiom the
/// codecs already use for unpredictable values, so decode stays a single
/// interleaved stream walk.
pub(crate) struct ModelSection<'a> {
    pub model: Cow<'a, HistogramModel>,
    pub overflow: Option<i32>,
}

/// Writes one frame's model section and decides how the frame is coded:
/// against the shared profile model (sentinel length, no table bytes,
/// out-of-model codes overflow-escaped) or against a per-frame fit embedded
/// as before.  The choice compares theoretical coded sizes, so a profile
/// fitted on the variable's first window can never corrupt a later outlier
/// window — at worst the frame falls back byte-identical to the cold path.
pub(crate) fn write_model_section<'a>(
    codes: &[i32],
    shared: Option<&'a HistogramModel>,
    out: &mut Vec<u8>,
) -> ModelSection<'a> {
    let embedded = HistogramModel::fit(codes);
    if let Some(model) = shared {
        let overflow = model.min_symbol();
        if model.can_encode(overflow) {
            let overflow_bits = model.symbol_bits(overflow) + 32.0;
            let shared_bits: f64 = codes
                .iter()
                .map(|&c| {
                    if c != overflow && model.can_encode(c) {
                        model.symbol_bits(c)
                    } else {
                        overflow_bits
                    }
                })
                .sum();
            let embedded_bits =
                embedded.estimate_bits(codes) + (embedded.header_bytes() * 8) as f64;
            if shared_bits <= embedded_bits {
                out.extend_from_slice(&SHARED_MODEL_SENTINEL.to_le_bytes());
                return ModelSection {
                    model: Cow::Borrowed(model),
                    overflow: Some(overflow),
                };
            }
        }
    }
    let bytes = embedded.to_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
    ModelSection {
        model: Cow::Owned(embedded),
        overflow: None,
    }
}

/// Reads one frame's model section: the embedded model, or the caller's
/// shared profile model (with the overflow convention active) when the
/// frame carries the sentinel.  The container layer validates the profile
/// before any payload decodes, so a sentinel frame decoded without a model
/// is caller misuse, not stream corruption — it panics like the other
/// malformed-frame asserts on this path.
pub(crate) fn read_model_section<'a>(
    bytes: &[u8],
    off: &mut usize,
    shared: Option<&'a HistogramModel>,
) -> ModelSection<'a> {
    let model_len = u32::from_le_bytes(bytes[*off..*off + 4].try_into().unwrap());
    *off += 4;
    if model_len == SHARED_MODEL_SENTINEL {
        let model =
            shared.expect("frame references the container's shared model, but none was provided");
        return ModelSection {
            overflow: Some(model.min_symbol()),
            model: Cow::Borrowed(model),
        };
    }
    let model_len = model_len as usize;
    let (model, used) = HistogramModel::from_bytes(&bytes[*off..*off + model_len]);
    assert_eq!(used, model_len);
    *off += model_len;
    ModelSection {
        model: Cow::Owned(model),
        overflow: None,
    }
}

/// Decodes one code from a model-section stream: the symbol itself, or —
/// when the shared-model overflow convention is active and the overflow
/// symbol comes out — the raw 32-bit value that follows it.
#[inline(always)]
pub(crate) fn read_code(
    model: &HistogramModel,
    overflow: Option<i32>,
    dec: &mut gld_entropy::RangeDecoder,
) -> i32 {
    let sym = model.decode_symbol(dec);
    match overflow {
        Some(o) if sym == o => dec.decode_bits_raw(32) as u32 as i32,
        _ => sym,
    }
}

/// Parses the histogram model embedded in a rule-codec frame — `None` when
/// the frame references a shared profile model through the sentinel.  This
/// is how a container-level entropy profile is seeded: compress the first
/// window cold, lift its embedded model out, and share it with the rest of
/// the variable.
pub fn embedded_frame_model(frame: &[u8]) -> Option<HistogramModel> {
    let (_, mut off) = BlockHeader::read(frame);
    let model_len = u32::from_le_bytes(frame[off..off + 4].try_into().unwrap());
    if model_len == SHARED_MODEL_SENTINEL {
        return None;
    }
    off += 4;
    let (model, used) = HistogramModel::from_bytes(&frame[off..off + model_len as usize]);
    assert_eq!(used, model_len as usize);
    Some(model)
}

/// Typed failure of a rule-based codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The input tensor's rank is outside the supported 1–4 window.
    UnsupportedRank {
        /// Rank of the offending tensor.
        rank: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnsupportedRank { rank } => write!(
                f,
                "unsupported tensor rank {rank}: rule-based codecs accept rank 1-4"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// A lossy compressor that guarantees a point-wise absolute error bound.
pub trait ErrorBoundedCompressor {
    /// Short display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Compresses `data` so that every reconstructed value differs from the
    /// original by at most `abs_error`.
    fn compress(&self, data: &Tensor, abs_error: f32) -> Vec<u8>;

    /// Fallible variant of [`ErrorBoundedCompressor::compress`]: unsupported
    /// inputs (e.g. a rank-5 tensor) surface as a typed [`BaselineError`]
    /// instead of a panic.
    fn try_compress(&self, data: &Tensor, abs_error: f32) -> Result<Vec<u8>, BaselineError> {
        Ok(self.compress(data, abs_error))
    }

    /// Reconstructs the tensor from a buffer produced by
    /// [`ErrorBoundedCompressor::compress`].
    fn decompress(&self, bytes: &[u8]) -> Tensor;

    /// Convenience helper returning `(reconstruction, compressed_size)`.
    fn roundtrip(&self, data: &Tensor, abs_error: f32) -> (Tensor, usize) {
        let bytes = self.compress(data, abs_error);
        let size = bytes.len();
        (self.decompress(&bytes), size)
    }
}

/// Compression ratio of an f32 tensor against a compressed byte size.
pub fn compression_ratio(data: &Tensor, compressed_bytes: usize) -> f64 {
    let raw = data.numel() * std::mem::size_of::<f32>();
    raw as f64 / compressed_bytes.max(1) as f64
}
