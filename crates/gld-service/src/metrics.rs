//! Service-level accounting, extending the executor's `StreamMetrics` idiom
//! (gauges whose peaks prove the configured bounds) to the server: per-shard
//! in-flight request windows, peak resident blocks across compress runs, and
//! byte counters.  The overload test asserts against these snapshots.

use gld_core::StreamMetrics;
use std::sync::atomic::{AtomicUsize, Ordering};

fn bump_peak(peak: &AtomicUsize, value: usize) {
    peak.fetch_max(value, Ordering::AcqRel);
}

/// Live counters for one shard.  All methods are lock-free; the in-flight
/// gauge is maintained by the shard queue under its own admission lock, so
/// gauge and peak move together.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
    admitted: AtomicUsize,
    completed: AtomicUsize,
    blocks: AtomicUsize,
    peak_resident_blocks: AtomicUsize,
    bytes_in: AtomicUsize,
    bytes_out: AtomicUsize,
}

impl ShardMetrics {
    /// Records a request entering the shard's window.
    pub fn admit(&self, request_bytes: usize) {
        let now = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        bump_peak(&self.peak_in_flight, now);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(request_bytes, Ordering::Relaxed);
    }

    /// Records a request leaving the window (response written or abandoned).
    pub fn complete(&self, response_bytes: usize) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(response_bytes, Ordering::Relaxed);
    }

    /// Folds one compress run's executor metrics into the shard account.
    pub fn record_stream(&self, metrics: &StreamMetrics) {
        self.blocks.fetch_add(metrics.blocks, Ordering::Relaxed);
        bump_peak(&self.peak_resident_blocks, metrics.peak_resident);
    }

    /// Records blocks handled outside the streaming executor (decompress).
    pub fn record_blocks(&self, blocks: usize) {
        self.blocks.fetch_add(blocks, Ordering::Relaxed);
    }

    /// A consistent-enough copy for assertions and reporting.
    pub fn snapshot(&self) -> ShardMetricsSnapshot {
        ShardMetricsSnapshot {
            in_flight: self.in_flight.load(Ordering::Acquire),
            peak_in_flight: self.peak_in_flight.load(Ordering::Acquire),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            blocks: self.blocks.load(Ordering::Relaxed),
            peak_resident_blocks: self.peak_resident_blocks.load(Ordering::Acquire),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one shard's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardMetricsSnapshot {
    /// Requests admitted to the window and not yet responded.
    pub in_flight: usize,
    /// Highest simultaneous in-flight count ever observed — bounded by the
    /// configured shard window by construction.
    pub peak_in_flight: usize,
    /// Total requests admitted.
    pub admitted: usize,
    /// Total requests completed (response written or connection gone).
    pub completed: usize,
    /// Total container frames processed (compressed or decompressed).
    pub blocks: usize,
    /// Highest per-run resident block count reported by the streaming
    /// executor — bounded by `StreamConfig::queue_depth`.
    pub peak_resident_blocks: usize,
    /// Request body bytes admitted.
    pub bytes_in: usize,
    /// Response body bytes produced.
    pub bytes_out: usize,
}

/// Whole-service accounting: one [`ShardMetrics`] per shard plus
/// connection-level counters.
#[derive(Debug)]
pub struct ServiceMetrics {
    shards: Vec<ShardMetrics>,
    connections_opened: AtomicUsize,
    connections_active: AtomicUsize,
    rejected_other: AtomicUsize,
    requests_rate_limited: AtomicUsize,
    deadlines_exceeded: AtomicUsize,
    connections_reaped_idle: AtomicUsize,
}

impl ServiceMetrics {
    /// Zeroed metrics for `shards` shards.
    pub fn new(shards: usize) -> Self {
        ServiceMetrics {
            shards: (0..shards.max(1))
                .map(|_| ShardMetrics::default())
                .collect(),
            connections_opened: AtomicUsize::new(0),
            connections_active: AtomicUsize::new(0),
            rejected_other: AtomicUsize::new(0),
            requests_rate_limited: AtomicUsize::new(0),
            deadlines_exceeded: AtomicUsize::new(0),
            connections_reaped_idle: AtomicUsize::new(0),
        }
    }

    /// The per-shard counters.
    pub fn shard(&self, index: usize) -> &ShardMetrics {
        &self.shards[index]
    }

    /// Records a connection being accepted.
    pub fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::AcqRel);
    }

    /// Records a connection handler exiting.
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Records a request refused before shard admission for a reason other
    /// than rate limiting or deadline expiry (protocol error, unknown
    /// codec, shutdown, over-limit body, ...).  The three rejection
    /// counters are **disjoint**; `requests_rejected` in the snapshot is
    /// always their sum.
    pub fn request_rejected_other(&self) {
        self.rejected_other.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused by the per-connection token bucket.
    /// Disjoint from the other rejection counters.
    pub fn request_rate_limited(&self) {
        self.requests_rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered with `Status::DeadlineExceeded`.
    /// Disjoint from the other rejection counters.
    pub fn deadline_exceeded(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an idle connection closed by the `--idle-timeout` reaper.
    pub fn connection_reaped_idle(&self) {
        self.connections_reaped_idle.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for assertions and reporting.
    pub fn snapshot(&self) -> ServiceMetricsSnapshot {
        let rejected_other = self.rejected_other.load(Ordering::Relaxed);
        let requests_rate_limited = self.requests_rate_limited.load(Ordering::Relaxed);
        let deadlines_exceeded = self.deadlines_exceeded.load(Ordering::Relaxed);
        ServiceMetricsSnapshot {
            shards: self.shards.iter().map(ShardMetrics::snapshot).collect(),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Acquire),
            requests_rejected: rejected_other + requests_rate_limited + deadlines_exceeded,
            requests_rate_limited,
            deadlines_exceeded,
            rejected_other,
            connections_reaped_idle: self.connections_reaped_idle.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the whole service's counters.
///
/// The three rejection-cause counters are **disjoint** — every refused
/// request is counted under exactly one of `requests_rate_limited`,
/// `deadlines_exceeded`, or `rejected_other` — and the roll-up invariant
/// `requests_rejected == requests_rate_limited + deadlines_exceeded +
/// rejected_other` holds by construction (the roll-up is derived at
/// snapshot time, never stored).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetricsSnapshot {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardMetricsSnapshot>,
    /// Connections accepted over the server's lifetime.
    pub connections_opened: usize,
    /// Connections currently being served.
    pub connections_active: usize,
    /// Requests refused before shard admission, for any reason: the sum of
    /// the three disjoint cause counters below.
    pub requests_rejected: usize,
    /// Requests refused with `Status::RateLimited` specifically.
    pub requests_rate_limited: usize,
    /// Requests answered with `Status::DeadlineExceeded`.
    pub deadlines_exceeded: usize,
    /// Requests refused for any other reason (protocol error, unknown
    /// codec, oversized body, drain refusal, ...).
    pub rejected_other: usize,
    /// Idle connections closed by the `--idle-timeout` reaper.
    pub connections_reaped_idle: usize,
}

impl ServiceMetricsSnapshot {
    /// Total requests completed across shards.
    pub fn completed(&self) -> usize {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Total container frames processed across shards.
    pub fn blocks(&self) -> usize {
        self.shards.iter().map(|s| s.blocks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_and_peaks_move_together() {
        let m = ShardMetrics::default();
        m.admit(10);
        m.admit(20);
        let snap = m.snapshot();
        assert_eq!(snap.in_flight, 2);
        assert_eq!(snap.peak_in_flight, 2);
        assert_eq!(snap.bytes_in, 30);
        m.complete(5);
        m.complete(7);
        let snap = m.snapshot();
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.peak_in_flight, 2, "peak survives the drain");
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.bytes_out, 12);
    }

    #[test]
    fn stream_metrics_fold_into_peaks() {
        let m = ShardMetrics::default();
        m.record_stream(&StreamMetrics {
            blocks: 4,
            peak_resident: 2,
        });
        m.record_stream(&StreamMetrics {
            blocks: 3,
            peak_resident: 1,
        });
        let snap = m.snapshot();
        assert_eq!(snap.blocks, 7);
        assert_eq!(snap.peak_resident_blocks, 2);
    }

    #[test]
    fn service_snapshot_aggregates() {
        let m = ServiceMetrics::new(2);
        m.connection_opened();
        m.shard(0).admit(1);
        m.shard(0).complete(1);
        m.shard(1).admit(1);
        m.shard(1).complete(1);
        m.request_rejected_other();
        m.connection_closed();
        let snap = m.snapshot();
        assert_eq!(snap.completed(), 2);
        assert_eq!(snap.connections_opened, 1);
        assert_eq!(snap.connections_active, 0);
        assert_eq!(snap.requests_rejected, 1);
        assert_eq!(snap.rejected_other, 1);
    }

    #[test]
    fn rejection_causes_are_disjoint_and_sum_to_the_rollup() {
        let m = ServiceMetrics::new(1);
        m.request_rate_limited();
        m.request_rate_limited();
        m.deadline_exceeded();
        m.request_rejected_other();
        let snap = m.snapshot();
        assert_eq!(snap.requests_rate_limited, 2);
        assert_eq!(snap.deadlines_exceeded, 1);
        assert_eq!(snap.rejected_other, 1);
        assert_eq!(
            snap.requests_rejected,
            snap.requests_rate_limited + snap.deadlines_exceeded + snap.rejected_other,
            "the roll-up is the sum of the disjoint causes"
        );
        assert_eq!(snap.requests_rejected, 4);
    }
}
