//! ZFP-like transform-based error-bounded compressor.
//!
//! The volume is padded to a multiple of 4 in every direction and tiled into
//! `4 × 4 × 4` blocks.  Each block is decorrelated with a separable
//! orthonormal 4-point DCT-II (a near-orthogonal transform in the same
//! spirit as ZFP's lifted transform), the coefficients are uniformly
//! quantised with a step chosen so that the worst-case reconstruction error
//! stays below the requested bound, and the quantisation codes are
//! range-coded with a histogram model.
//!
//! Because the transform is orthonormal along each axis, a per-coefficient
//! quantisation error of `δ` can grow by at most a factor of `2` per axis in
//! the reconstructed samples (`Σ|basis| ≤ 2` for the 4-point DCT rows), so a
//! step of `eb / 8` guarantees `|x − x̂| ≤ eb` for 3-D blocks.
//!
//! Hot-path organisation mirrors `szlike`: tiles fully inside the volume
//! (the vast majority) gather and scatter whole 4-element rows with hoisted
//! bounds checks, only edge tiles pay the clamped `padded_at` path; the DCT
//! basis is computed once per process; the separable transform and the
//! branchless quantiser dispatch through [`gld_kernels`] to the best SIMD
//! backend the host supports; and the per-block code/escape vectors come
//! from a caller-provided [`ZfpScratch`].

use crate::header::{BlockHeader, Codec};
use crate::{BaselineError, ErrorBoundedCompressor};
use gld_entropy::{HistogramModel, RangeDecoder, RangeEncoder};
use gld_kernels::kernels;
use gld_tensor::Tensor;
use std::sync::OnceLock;

/// Block edge length.
const BLOCK: usize = 4;
/// Sentinel marking an escaped coefficient; magnitudes beyond
/// [`gld_kernels::ZFP_MAX_CODE`] escape to raw 32-bit storage.
pub(crate) const ESCAPE: i32 = gld_kernels::ZFP_ESCAPE;
/// Worst-case amplification of per-coefficient quantisation error for a
/// separable 3-D orthonormal DCT (2 per axis).
const ERROR_AMPLIFICATION: f32 = 8.0;

/// Reusable per-worker buffers for [`ZfpLikeCompressor::compress_into`].
#[derive(Debug, Clone, Default)]
pub struct ZfpScratch {
    codes: Vec<i32>,
    escapes: Vec<i32>,
}

impl ZfpScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Transform-based error-bounded compressor (ZFP-like).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpLikeCompressor;

impl ZfpLikeCompressor {
    /// Creates the compressor.
    pub fn new() -> Self {
        ZfpLikeCompressor
    }

    pub(crate) fn try_as_volume_dims(
        dims: &[usize],
    ) -> Result<(usize, usize, usize), BaselineError> {
        match dims.len() {
            1 => Ok((1, 1, dims[0])),
            2 => Ok((1, dims[0], dims[1])),
            3 => Ok((dims[0], dims[1], dims[2])),
            4 => Ok((dims[0] * dims[1], dims[2], dims[3])),
            rank => Err(BaselineError::UnsupportedRank { rank }),
        }
    }

    fn as_volume_dims(dims: &[usize]) -> (usize, usize, usize) {
        Self::try_as_volume_dims(dims).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compresses `data` into `out` (appended), reusing `scratch`.  Output
    /// bytes are independent of the scratch's previous contents.
    pub fn compress_into(
        &self,
        data: &Tensor,
        abs_error: f32,
        scratch: &mut ZfpScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), BaselineError> {
        self.compress_into_shared(data, abs_error, None, scratch, out)
    }

    /// [`ZfpLikeCompressor::compress_into`] with an optional **shared**
    /// histogram model (the container's cross-frame entropy profile): when
    /// it covers every coefficient code the frame references it through
    /// [`crate::SHARED_MODEL_SENTINEL`] instead of fitting and embedding its
    /// own, and must be decoded through
    /// [`ZfpLikeCompressor::decompress_shared`] with the same model.
    pub fn compress_into_shared(
        &self,
        data: &Tensor,
        abs_error: f32,
        shared: Option<&HistogramModel>,
        scratch: &mut ZfpScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), BaselineError> {
        assert!(abs_error > 0.0, "absolute error bound must be positive");
        let (d0, d1, d2) = Self::try_as_volume_dims(data.dims())?;
        let (p0, p1, p2) = (
            d0.div_ceil(BLOCK) * BLOCK,
            d1.div_ceil(BLOCK) * BLOCK,
            d2.div_ceil(BLOCK) * BLOCK,
        );
        let src = data.data();
        // Pad by edge replication so padding does not create artificial
        // discontinuities (wasted bits).
        let padded_at = |i: usize, j: usize, k: usize| -> f32 {
            let i = i.min(d0 - 1);
            let j = j.min(d1 - 1);
            let k = k.min(d2 - 1);
            src[(i * d1 + j) * d2 + k]
        };
        let step = abs_error / ERROR_AMPLIFICATION;
        scratch.codes.clear();
        scratch.codes.reserve(p0 * p1 * p2);
        scratch.escapes.clear();
        let codes = &mut scratch.codes;
        let escapes = &mut scratch.escapes;
        let kern = kernels();
        let mut tile_codes = [0i32; 64];
        for bi in (0..p0).step_by(BLOCK) {
            for bj in (0..p1).step_by(BLOCK) {
                for bk in (0..p2).step_by(BLOCK) {
                    let mut block = [0.0f32; 64];
                    if bi + BLOCK <= d0 && bj + BLOCK <= d1 && bk + BLOCK <= d2 {
                        // Interior tile: whole 4-element rows, no clamping.
                        for i in 0..BLOCK {
                            for j in 0..BLOCK {
                                let base = ((bi + i) * d1 + (bj + j)) * d2 + bk;
                                block[i * 16 + j * 4..i * 16 + j * 4 + 4]
                                    .copy_from_slice(&src[base..base + 4]);
                            }
                        }
                    } else {
                        for i in 0..BLOCK {
                            for j in 0..BLOCK {
                                for k in 0..BLOCK {
                                    block[i * 16 + j * 4 + k] = padded_at(bi + i, bj + j, bk + k);
                                }
                            }
                        }
                    }
                    kern.zfp_transform(&mut block, dct4_basis(), false);
                    // Branchless select between the coded and escape paths
                    // (same decision as the original nested ifs), vectorised
                    // by the active backend.
                    kern.zfp_quantize(&block, step, &mut tile_codes, escapes);
                    codes.extend_from_slice(&tile_codes);
                }
            }
        }

        BlockHeader::new(Codec::ZfpLike, data, abs_error).write(out);
        let section = crate::write_model_section(codes, shared, out);
        let model = section.model.as_ref();
        let mut enc = RangeEncoder::new();
        let mut esc_iter = escapes.iter();
        for &c in codes.iter() {
            match section.overflow {
                Some(overflow) if c == overflow || !model.can_encode(c) => {
                    model.encode_symbol(&mut enc, overflow);
                    enc.encode_bits_raw(c as u32 as u64, 32);
                }
                _ => model.encode_symbol(&mut enc, c),
            }
            if c == ESCAPE {
                let raw = *esc_iter.next().expect("escape value missing");
                enc.encode_bits_raw(raw as u32 as u64, 32);
            }
        }
        let stream = enc.finish();
        out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        out.extend_from_slice(&stream);
        Ok(())
    }
}

/// Orthonormal 4-point DCT-II basis (rows are basis vectors), computed once
/// per process.
fn dct4_basis() -> &'static [[f32; 4]; 4] {
    static BASIS: OnceLock<[[f32; 4]; 4]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut m = [[0.0f32; 4]; 4];
        for (k, row) in m.iter_mut().enumerate() {
            let scale = if k == 0 {
                (1.0f32 / 4.0).sqrt()
            } else {
                (2.0f32 / 4.0).sqrt()
            };
            for (n, v) in row.iter_mut().enumerate() {
                *v = scale * ((std::f32::consts::PI / 4.0) * (n as f32 + 0.5) * k as f32).cos();
            }
        }
        m
    })
}

/// Full separable forward transform through the active kernel backend
/// (forward: `y_k = Σ basis[k][n] x_n`; the inverse uses the transpose).
#[cfg(test)]
fn forward_transform(block: &mut [f32; 64]) {
    kernels().zfp_transform(block, dct4_basis(), false);
}

fn inverse_transform(block: &mut [f32; 64]) {
    kernels().zfp_transform(block, dct4_basis(), true);
}

impl ErrorBoundedCompressor for ZfpLikeCompressor {
    fn name(&self) -> &'static str {
        "ZFP-like"
    }

    fn compress(&self, data: &Tensor, abs_error: f32) -> Vec<u8> {
        self.try_compress(data, abs_error)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_compress(&self, data: &Tensor, abs_error: f32) -> Result<Vec<u8>, BaselineError> {
        let mut out = Vec::new();
        self.compress_into(data, abs_error, &mut ZfpScratch::new(), &mut out)?;
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Tensor {
        self.decompress_shared(bytes, None)
    }
}

impl ZfpLikeCompressor {
    /// [`ErrorBoundedCompressor::decompress`] with an optional shared
    /// histogram model: required for frames written through
    /// [`ZfpLikeCompressor::compress_into_shared`] that carry the
    /// shared-model sentinel, ignored by frames embedding their own model.
    pub fn decompress_shared(&self, bytes: &[u8], shared: Option<&HistogramModel>) -> Tensor {
        let (header, mut off) = BlockHeader::read(bytes);
        assert_eq!(header.codec, Codec::ZfpLike, "not a ZFP-like stream");
        let section = crate::read_model_section(bytes, &mut off, shared);
        let model = section.model.as_ref();
        let overflow = section.overflow;
        let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let stream = &bytes[off..off + stream_len];

        let (d0, d1, d2) = Self::as_volume_dims(&header.dims);
        let (p0, p1, p2) = (
            d0.div_ceil(BLOCK) * BLOCK,
            d1.div_ceil(BLOCK) * BLOCK,
            d2.div_ceil(BLOCK) * BLOCK,
        );
        let step = header.abs_error / ERROR_AMPLIFICATION;
        let mut dec = RangeDecoder::new(stream);
        let mut recon = vec![0.0f32; d0 * d1 * d2];
        for bi in (0..p0).step_by(BLOCK) {
            for bj in (0..p1).step_by(BLOCK) {
                for bk in (0..p2).step_by(BLOCK) {
                    let mut block = [0.0f32; 64];
                    for v in block.iter_mut() {
                        let code = crate::read_code(model, overflow, &mut dec);
                        let q = if code == ESCAPE {
                            dec.decode_bits_raw(32) as u32 as i32
                        } else {
                            code
                        };
                        *v = q as f32 * step;
                    }
                    inverse_transform(&mut block);
                    if bi + BLOCK <= d0 && bj + BLOCK <= d1 && bk + BLOCK <= d2 {
                        // Interior tile: whole-row scatter, no bounds tests.
                        for i in 0..BLOCK {
                            for j in 0..BLOCK {
                                let base = ((bi + i) * d1 + (bj + j)) * d2 + bk;
                                recon[base..base + 4]
                                    .copy_from_slice(&block[i * 16 + j * 4..i * 16 + j * 4 + 4]);
                            }
                        }
                    } else {
                        for i in 0..BLOCK {
                            for j in 0..BLOCK {
                                for k in 0..BLOCK {
                                    let (gi, gj, gk) = (bi + i, bj + j, bk + k);
                                    if gi < d0 && gj < d1 && gk < d2 {
                                        recon[(gi * d1 + gj) * d2 + gk] = block[i * 16 + j * 4 + k];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(recon, &header.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression_ratio;
    use crate::szlike::SzCompressor;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_tensor::stats::max_abs_error;
    use gld_tensor::TensorRng;
    use proptest::prelude::*;

    #[test]
    fn dct_basis_is_orthonormal() {
        let b = dct4_basis();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f32 = (0..4).map(|k| b[i][k] * b[j][k]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expected).abs() < 1e-5,
                    "basis not orthonormal at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn transform_roundtrip_is_identity() {
        let mut rng = TensorRng::new(0);
        let original: Vec<f32> = rng.randn(&[64]).into_vec();
        let mut block = [0.0f32; 64];
        block.copy_from_slice(&original);
        forward_transform(&mut block);
        inverse_transform(&mut block);
        for (a, b) in block.iter().zip(original.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn shared_model_sentinel_roundtrips_smaller() {
        let spec = FieldSpec::new(1, 4, 16, 16);
        let ds = generate(DatasetKind::Jhtdb, &spec, 9);
        let data = &ds.variables[0].frames;
        let zfp = ZfpLikeCompressor::new();
        let mut scratch = ZfpScratch::new();
        let cold = zfp.compress(data, 1e-2);
        let model = crate::embedded_frame_model(&cold).expect("cold frame embeds its model");
        let mut shared = Vec::new();
        zfp.compress_into_shared(data, 1e-2, Some(&model), &mut scratch, &mut shared)
            .unwrap();
        assert!(
            shared.len() < cold.len(),
            "shared {} should drop the model table of cold {}",
            shared.len(),
            cold.len()
        );
        assert!(crate::embedded_frame_model(&shared).is_none());
        let recon = zfp.decompress_shared(&shared, Some(&model));
        assert_eq!(recon.data(), zfp.decompress(&cold).data());
    }

    #[test]
    fn shared_model_falls_back_to_embedded_fit_when_overflow_coding_loses() {
        // A checkerboard's DCT coefficients repeat a handful of distinct
        // codes across every tile, all outside a constant-fitted model:
        // raw 32-bit overflow coding per occurrence loses to a tiny
        // embedded fit, so the frame must fall back byte-identical to cold.
        let zfp = ZfpLikeCompressor::new();
        let mut scratch = ZfpScratch::new();
        let constant = Tensor::full(&[4, 8, 8], 1.0);
        let narrow = crate::embedded_frame_model(&zfp.compress(&constant, 1e-2)).unwrap();
        let board = Tensor::from_vec(
            (0..4 * 8 * 8)
                .map(|i| (((i / 64) + (i / 8) % 8 + i % 8) % 2) as f32)
                .collect(),
            &[4, 8, 8],
        );
        let mut shared = Vec::new();
        zfp.compress_into_shared(&board, 1e-2, Some(&narrow), &mut scratch, &mut shared)
            .unwrap();
        assert_eq!(shared, zfp.compress(&board, 1e-2));
    }

    #[test]
    fn shared_model_overflow_codes_escaping_values_and_still_wins() {
        // Noise under a narrow model: overflow coding beats serialising a
        // near-unique sparse model, so the frame stays shared and must
        // round-trip exactly through the overflow path.
        let zfp = ZfpLikeCompressor::new();
        let mut scratch = ZfpScratch::new();
        let constant = Tensor::full(&[4, 8, 8], 1.0);
        let narrow = crate::embedded_frame_model(&zfp.compress(&constant, 1e-2)).unwrap();
        let mut rng = TensorRng::new(13);
        let noise = rng.randn(&[4, 8, 8]).scale(4.0);
        let mut shared = Vec::new();
        zfp.compress_into_shared(&noise, 1e-2, Some(&narrow), &mut scratch, &mut shared)
            .unwrap();
        let cold = zfp.compress(&noise, 1e-2);
        assert!(
            shared.len() < cold.len(),
            "overflow coding {} should beat the embedded fit {}",
            shared.len(),
            cold.len()
        );
        assert!(crate::embedded_frame_model(&shared).is_none());
        let recon = zfp.decompress_shared(&shared, Some(&narrow));
        assert_eq!(recon.data(), zfp.decompress(&cold).data());
    }

    #[test]
    fn error_bound_holds_on_all_synthetic_datasets() {
        let spec = FieldSpec::new(1, 8, 16, 16);
        let zfp = ZfpLikeCompressor::new();
        for kind in DatasetKind::all() {
            let ds = generate(kind, &spec, 4);
            let frames = &ds.variables[0].frames;
            let range = frames.max() - frames.min();
            let eb = 1e-2 * range;
            let (recon, size) = zfp.roundtrip(frames, eb);
            let err = max_abs_error(frames, &recon);
            assert!(
                err <= eb * 1.0001,
                "error {err} exceeds bound {eb} on {kind:?}"
            );
            assert!(
                compression_ratio(frames, size) > 1.0,
                "no compression on {kind:?}"
            );
        }
    }

    #[test]
    fn error_bound_holds_on_non_multiple_of_four_shapes() {
        let mut rng = TensorRng::new(9);
        let zfp = ZfpLikeCompressor::new();
        for dims in [vec![3usize, 7, 9], vec![5, 5], vec![17]] {
            let data = rng.randn(&dims).scale(3.0);
            let (recon, _) = zfp.roundtrip(&data, 0.05);
            assert_eq!(recon.dims(), data.dims());
            assert!(
                max_abs_error(&data, &recon) <= 0.05 * 1.0001,
                "dims {dims:?}"
            );
        }
    }

    #[test]
    fn larger_bound_gives_higher_ratio() {
        let spec = FieldSpec::new(1, 8, 16, 16);
        let ds = generate(DatasetKind::S3d, &spec, 8);
        let frames = &ds.variables[0].frames;
        let range = frames.max() - frames.min();
        let zfp = ZfpLikeCompressor::new();
        let loose = zfp.compress(frames, 1e-2 * range).len();
        let tight = zfp.compress(frames, 1e-4 * range).len();
        assert!(loose < tight);
    }

    #[test]
    fn rank5_input_is_a_typed_error_not_a_panic() {
        let zfp = ZfpLikeCompressor::new();
        let t = Tensor::zeros(&[2, 2, 2, 2, 2]);
        let err = zfp.try_compress(&t, 1e-3).unwrap_err();
        assert_eq!(err, crate::BaselineError::UnsupportedRank { rank: 5 });
    }

    #[test]
    fn dirty_scratch_produces_identical_frames() {
        let mut rng = TensorRng::new(11);
        let zfp = ZfpLikeCompressor::new();
        let mut scratch = ZfpScratch::new();
        for dims in [vec![4usize, 8, 8], vec![3, 7, 9], vec![5, 5], vec![17]] {
            let data = rng.randn(&dims).scale(3.0);
            let mut reused = Vec::new();
            zfp.compress_into(&data, 0.05, &mut scratch, &mut reused)
                .unwrap();
            let fresh = zfp.compress(&data, 0.05);
            assert_eq!(reused, fresh, "dims {dims:?}");
        }
    }

    #[test]
    fn prediction_based_beats_transform_based_on_smooth_fields() {
        // The paper's Figure 3 shows SZ3 dominating ZFP on these datasets;
        // verify the same ordering for our reimplementations on the smooth
        // climate-like data at a matched error bound.
        let spec = FieldSpec::new(1, 8, 16, 16);
        let ds = generate(DatasetKind::E3sm, &spec, 6);
        let frames = &ds.variables[0].frames;
        let range = frames.max() - frames.min();
        let eb = 1e-3 * range;
        let sz_size = SzCompressor::new().compress(frames, eb).len();
        let zfp_size = ZfpLikeCompressor::new().compress(frames, eb).len();
        assert!(
            sz_size < zfp_size,
            "SZ3-like ({sz_size} B) should beat ZFP-like ({zfp_size} B) on smooth data"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_error_bound_always_holds(
            seed in 0u64..300,
            d0 in 1usize..5,
            d1 in 3usize..10,
            d2 in 3usize..10,
            eb in 0.01f32..0.5,
        ) {
            let mut rng = TensorRng::new(seed);
            let data = rng.randn(&[d0, d1, d2]).scale(4.0);
            let zfp = ZfpLikeCompressor::new();
            let (recon, _) = zfp.roundtrip(&data, eb);
            prop_assert!(max_abs_error(&data, &recon) <= eb * 1.0001);
        }
    }
}
