//! Turbulence scenario: demonstrate the error-bound guarantee machinery on
//! the hardest dataset (JHTDB-like synthetic turbulence).  Sweeps a range of
//! NRMSE targets and shows how the auxiliary correction stream grows as the
//! bound tightens while the guarantee always holds (paper §3.5).
//!
//! Run with:
//! ```text
//! cargo run --release --example turbulence_error_bound
//! ```

use gld_core::{GldCompressor, GldConfig, GldTrainingBudget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::nrmse;

fn main() {
    let spec = FieldSpec::new(3, 16, 16, 16);
    let dataset = generate(DatasetKind::Jhtdb, &spec, 99);
    let config = GldConfig::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 250,
        diffusion_steps: 250,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    println!("training on synthetic isotropic turbulence ...");
    let compressor = GldCompressor::train(config, &dataset.variables, budget);

    let block = dataset.variables[0]
        .frames
        .slice_axis(0, 0, config.block_frames);

    println!(
        "\n{:>12} {:>12} {:>14} {:>16} {:>12}",
        "target", "achieved", "ratio", "keyframe bytes", "aux bytes"
    );
    for target in [2e-2f32, 1e-2, 5e-3, 2e-3, 1e-3] {
        let (compressed, outcome) = compressor.compress_block_with_outcome(&block, Some(target));
        let recon = compressor.decompress_block(&compressed);
        let achieved = nrmse(&block, &recon);
        assert!(achieved <= target * 1.01, "bound violated");
        println!(
            "{:>12.1e} {:>12.2e} {:>13.1}x {:>16} {:>12}",
            target,
            achieved,
            compressed.compression_ratio(),
            compressed.keyframe_bytes.len(),
            compressed.aux_bytes.len()
        );
        if let Some(outcome) = outcome {
            assert!(outcome.achieved <= outcome.tau * 1.001);
        }
    }
    println!("\nevery row satisfied its bound; tighter bounds pay with a larger correction stream");
}
