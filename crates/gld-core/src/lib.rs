//! # gld-core
//!
//! The end-to-end generative latent diffusion compressor — the paper's
//! primary contribution — together with everything the evaluation section
//! needs:
//!
//! * [`keyframes`] — keyframe selection strategies (§4.4): prediction-based,
//!   interpolation-based and mixed, plus the interval sweep of §4.5;
//! * [`error_bound`] — the PCA residual post-processing module that turns
//!   the lossy reconstruction into one with a guaranteed error bound (§3.5);
//! * [`pipeline`] — [`pipeline::GldCompressor`]: VAE + hyperprior keyframe
//!   coding, conditional latent diffusion interpolation of the remaining
//!   frames, and compression-ratio accounting (Eq. 11);
//! * [`learned_baselines`] — analogues of CDC-X/CDC-ε, GCD and VAE-SR that
//!   share the same VAE substrate but store latents for *every* frame, the
//!   structural difference the paper's comparison isolates;
//! * [`sweep`] — rate–distortion sweep helpers used by the benchmark
//!   harness to regenerate Figure 3 and the headline claims;
//! * [`codec`] — the unified [`codec::Codec`] trait every compressor family
//!   implements, with shared parallel per-variable accounting;
//! * [`container`] — the framed binary container (`GLDC` magic, version,
//!   codec id, length-prefixed block frames) that makes compressed output a
//!   plain byte stream whose measured size is the reported size; since v3
//!   every frame runs through the adaptive per-frame `gld-lz` lossless
//!   stage, keeping whichever of the staged and raw payloads is smaller.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod container;
pub mod crc32;
pub mod error_bound;
pub mod executor;
pub mod keyframes;
pub mod learned_baselines;
pub mod pipeline;
pub mod sweep;

pub use codec::{
    compress_variable_to_writer, compress_variable_to_writer_fmt, Codec, CodecError, CodecScratch,
    ErrorTarget, StreamWriteError, VariableStats,
};
pub use container::{
    CodecId, Container, ContainerError, ContainerFormat, ContainerWriter, DictMode, EntropyProfile,
    LostFrame, Salvage, SalvageReport,
};
pub use error_bound::{ErrorBoundConfig, ErrorBoundOutcome, PcaErrorBound};
pub use executor::{fit_variable_profile, StageMode, StreamConfig, StreamMetrics, WarmProfile};
/// Kernel backend dispatch (re-exported): the SIMD/scalar inner loops every
/// codec in this stack runs on, selectable via `GLD_KERNEL_BACKEND` or
/// [`gld_kernels::force`].
pub use gld_kernels;
pub use keyframes::{KeyframeStrategy, KeyframeSummary};
pub use learned_baselines::{LearnedBaseline, LearnedBaselineKind};
pub use pipeline::{
    derive_block_seed, CompressedBlock, GldCompressor, GldConfig, GldError, GldTrainingBudget,
};
pub use sweep::{RatePoint, RateSweep};
