//! Slow-client robustness: the event-loop front end must keep one
//! misbehaving connection's cost confined to that connection.
//!
//! * A client trickling one byte per poll tick only backpressures itself —
//!   a concurrent well-behaved client finishes all its work long before the
//!   trickled frame even completes.
//! * A client that declares a body and stalls mid-body is never admitted to
//!   a shard (no in-flight slot, no completion) and never blocks others.
//! * A half-closed socket (client `shutdown(Write)` after its request)
//!   still receives its response, then is reaped without leaking a
//!   connection slot.

use gld_baselines::SzCompressor;
use gld_core::{Codec, CodecId};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::protocol::{self, CompressRequest, FrameHeader, Op, Status, MAX_BODY_LEN};
use gld_service::{CodecRegistry, Server, ServiceClient, ServiceConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

fn start_server(config: ServiceConfig) -> Server {
    Server::start(config, CodecRegistry::rule_based()).expect("bind an ephemeral port")
}

fn poll_until(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !check() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A raw compress frame (header + body) for `variable`, explicit codec byte.
fn raw_compress_frame(key: &str, seed: u64) -> Vec<u8> {
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), seed);
    let frames = &ds.variables[0].frames;
    let body = CompressRequest {
        key: key.to_string(),
        block_frames: 4,
        target: None,
        dims: [
            frames.dim(0) as u32,
            frames.dim(1) as u32,
            frames.dim(2) as u32,
        ],
        data: frames.data().to_vec(),
    }
    .encode_body();
    let header = FrameHeader::request(Op::Compress, CodecId::SzLike as u8, 1, body.len() as u64);
    let mut frame = header.encode().to_vec();
    frame.extend_from_slice(&body);
    frame
}

#[test]
fn one_byte_per_tick_client_only_backpressures_itself() {
    let server = start_server(ServiceConfig::default());
    let addr = server.local_addr();

    // The trickler: a ping frame at one byte per 30ms — over 900ms for the
    // 32-byte header.  Returns the instant its pong finally arrived.
    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect slow");
        let frame = FrameHeader::request(Op::Ping, 0, 77, 0).encode();
        for byte in frame {
            stream.write_all(&[byte]).expect("write one byte");
            std::thread::sleep(Duration::from_millis(30));
        }
        let (header, _) = protocol::read_frame(&mut stream, MAX_BODY_LEN)
            .expect("read pong")
            .expect("decode pong");
        assert_eq!(header.request_id, 77);
        assert_eq!(header.status, Status::Ok);
        Instant::now()
    });

    // Meanwhile a well-behaved client round-trips real work, unhindered.
    let sz = SzCompressor::new();
    let mut client = ServiceClient::connect(addr).expect("connect fast");
    client.hello(&[CodecId::SzLike]).expect("hello");
    for i in 0..10 {
        let ds = generate(DatasetKind::Jhtdb, &FieldSpec::new(1, 16, 8, 8), i);
        let remote = client
            .compress_as(
                CodecId::SzLike,
                &format!("fast/{i}"),
                &ds.variables[0],
                4,
                None,
            )
            .expect("compress while the trickler trickles");
        let (local, _, _) = sz.compress_variable_profiled(
            &ds.variables[0],
            4,
            None,
            gld_core::StreamConfig::default(),
        );
        assert_eq!(remote, local.encode(), "fast path stays bit-identical");
    }
    let fast_done = Instant::now();

    let pong_at = slow.join().expect("slow client thread");
    assert!(
        fast_done < pong_at,
        "all fast-client work must finish before the trickled ping completes"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn mid_body_staller_is_never_admitted_and_never_blocks_others() {
    let server = start_server(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    let addr = server.local_addr();

    // Declare a full compress body, send only half of it, then stall with
    // the socket held open.
    let frame = raw_compress_frame("staller", 5);
    let mut staller = TcpStream::connect(addr).expect("connect staller");
    staller
        .write_all(&frame[..frame.len() / 2])
        .expect("write half a frame");
    poll_until(
        "the staller's bytes to land",
        Duration::from_secs(10),
        || server.metrics().connections_active == 1,
    );

    // Others flow normally across both shards.
    let mut client = ServiceClient::connect(addr).expect("connect");
    client.hello(&[CodecId::SzLike]).expect("hello");
    const REQUESTS: usize = 6;
    for i in 0..REQUESTS {
        let ds = generate(
            DatasetKind::S3d,
            &FieldSpec::new(1, 16, 8, 8),
            50 + i as u64,
        );
        let remote = client
            .compress_as(
                CodecId::SzLike,
                &format!("ok/{i}"),
                &ds.variables[0],
                4,
                None,
            )
            .expect("compress beside the staller");
        let blocks = client
            .decompress(&format!("ok/{i}"), &remote)
            .expect("decompress beside the staller");
        assert!(!blocks.is_empty());
    }

    // The stalled request was never admitted: no slot held, nothing beyond
    // the well-behaved client's work completed.
    let during = server.metrics();
    assert_eq!(
        during.completed(),
        REQUESTS * 2,
        "only the well-behaved client's requests complete: {during:?}"
    );
    assert!(
        during.shards.iter().all(|s| s.in_flight == 0),
        "a mid-body stall must not hold an admission slot: {during:?}"
    );
    assert_eq!(during.connections_active, 2);

    // Hanging up mid-body reaps the connection without ceremony.
    drop(staller);
    poll_until("the staller to be reaped", Duration::from_secs(10), || {
        server.metrics().connections_active == 1
    });
    drop(client);
    server.shutdown();
}

#[test]
fn half_closed_socket_gets_its_response_then_is_reaped() {
    let server = start_server(ServiceConfig::default());
    let addr = server.local_addr();

    let frame = raw_compress_frame("half-closed", 9);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&frame).expect("write full request");
    stream
        .shutdown(Shutdown::Write)
        .expect("half-close the write side");

    // The response still arrives on the half-open socket, bit-identical to
    // the session-free (v2) encoding a hello-less connection negotiates.
    let (header, body) = protocol::read_frame(&mut stream, MAX_BODY_LEN)
        .expect("read response")
        .expect("decode response");
    assert_eq!(header.status, Status::Ok);
    assert_eq!(header.request_id, 1);
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), 9);
    let (local, _) = SzCompressor::new().compress_variable(&ds.variables[0], 4, None);
    assert_eq!(body, local.encode_v2(), "hello-less response must be v2");

    // ...after which the server reaps the connection entirely on its own.
    let mut rest = Vec::new();
    stream
        .read_to_end(&mut rest)
        .expect("server closes cleanly");
    assert!(rest.is_empty(), "nothing after the response");
    poll_until(
        "the half-closed conn to be reaped",
        Duration::from_secs(10),
        || {
            let m = server.metrics();
            m.connections_active == 0 && m.shards.iter().all(|s| s.in_flight == 0)
        },
    );
    server.shutdown();
}
