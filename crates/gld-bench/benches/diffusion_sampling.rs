//! Criterion benchmarks for the conditional latent diffusion model: a single
//! training-loss evaluation and keyframe-conditioned generation at several
//! denoising-step counts (the knob behind Figure 5 and Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use gld_diffusion::{ConditionalDiffusion, DiffusionConfig, FramePartition};
use gld_nn::prelude::*;
use gld_tensor::TensorRng;
use std::hint::black_box;

fn bench_diffusion(c: &mut Criterion) {
    let model = ConditionalDiffusion::new(DiffusionConfig {
        latent_channels: 4,
        model_channels: 12,
        heads: 2,
        time_embed_dim: 16,
        train_steps: 200,
        seed: 0,
    });
    let mut rng = TensorRng::new(5);
    let block = rng.rand_uniform(&[16, 4, 4, 4], -1.0, 1.0);
    let partition = FramePartition::from_conditioning(16, &[0, 3, 6, 9, 12, 15]);

    let mut group = c.benchmark_group("diffusion");
    group.sample_size(10);
    group.bench_function("training_loss_step_n16", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let mut step_rng = TensorRng::new(2);
            let loss = model.training_loss(&tape, black_box(&block), &partition, &mut step_rng);
            black_box(loss.backward());
            model.parameters().zero_grad();
        })
    });
    for steps in [2usize, 8, 32] {
        group.bench_function(format!("generate_{steps}_steps_n16"), |bench| {
            bench.iter(|| {
                let mut sample_rng = TensorRng::new(3);
                black_box(model.generate(black_box(&block), &partition, steps, &mut sample_rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diffusion);
criterion_main!(benches);
