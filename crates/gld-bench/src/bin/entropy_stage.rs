//! Container v3 entropy-stage benchmark: compression-ratio and throughput
//! accounting for the per-frame `gld-lz` lossless stage, stage-on (v3)
//! vs stage-off (v2), over the synthetic-field corpus.
//!
//! For every dataset kind × codec the binary compresses each variable,
//! encodes the container both ways, verifies the staged stream round-trips
//! **bit-identically** back to the unstaged frames, and measures the stage
//! codec's own compress/decompress throughput over the real frame payloads.
//!
//! Results land in `results/entropy_stage.csv` and
//! `BENCH_entropy_stage.json` (repo root).  Flags:
//!
//! * `--quick` — short measurement windows (CI mode);
//! * `--backend <scalar|sse2|avx2|simd|auto>` — pin the kernel backend the
//!   stage (and the codecs feeding it) runs on;
//! * `--check` — exit non-zero unless the stage-on container total is at
//!   least [`REQUIRED_REDUCTION`] smaller than stage-off on the corpus and
//!   every staged container round-trips bit-identically (the CI gate).

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_bench::{write_result, write_root_result};
use gld_core::{Codec, Container, ErrorTarget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_lz::LzScratch;
use std::time::Instant;

/// The gate: stage-on containers must shave at least this fraction off the
/// stage-off total on the synthetic-field corpus.
const REQUIRED_REDUCTION: f64 = 0.10;

/// One corpus leg's accounting.
struct Leg {
    dataset: &'static str,
    codec: &'static str,
    off_bytes: usize,
    on_bytes: usize,
    staged_frames: usize,
    total_frames: usize,
    roundtrip_ok: bool,
}

impl Leg {
    fn reduction(&self) -> f64 {
        1.0 - self.on_bytes as f64 / self.off_bytes.max(1) as f64
    }
}

/// Measures gld-lz compress and decompress MB/s over real frame payloads.
fn measure_stage_throughput(frames: &[Vec<u8>], window_s: f64) -> (f64, f64) {
    let mut scratch = LzScratch::new();
    let total_bytes: usize = frames.iter().map(Vec::len).sum();
    let staged: Vec<Vec<u8>> = frames
        .iter()
        .map(|f| gld_lz::compress(f, &mut scratch))
        .collect();

    let run = |mut op: Box<dyn FnMut() + '_>| -> f64 {
        op(); // warm-up
        let start = Instant::now();
        let mut passes = 0usize;
        while start.elapsed().as_secs_f64() < window_s {
            op();
            passes += 1;
        }
        passes as f64 * total_bytes as f64 / 1e6 / start.elapsed().as_secs_f64()
    };

    let compress_mb_s = {
        let mut scratch = LzScratch::new();
        run(Box::new(|| {
            for frame in frames {
                std::hint::black_box(gld_lz::compress(frame, &mut scratch));
            }
        }))
    };
    let decompress_mb_s = run(Box::new(|| {
        for (stream, frame) in staged.iter().zip(frames) {
            std::hint::black_box(gld_lz::decompress(stream, frame.len()).expect("valid stream"));
        }
    }));
    (compress_mb_s, decompress_mb_s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let sel = args.get(i + 1).expect("--backend needs a value");
        let b = gld_kernels::Backend::parse_selection(sel)
            .unwrap_or_else(|| panic!("--backend: unknown selection {sel:?}"));
        gld_kernels::force(b).unwrap_or_else(|e| panic!("--backend: {e}"));
    }
    println!(
        "entropy_stage: kernel backend {} (cpu: {})",
        gld_kernels::active(),
        gld_kernels::cpu_features()
    );
    let window_s = if quick { 0.25 } else { 1.5 };

    // The synthetic-field corpus: every generator kind, the figure-binary
    // field shape (2 variables × 32 frames of 16×16, four 8-frame windows
    // each), the paper's mid-curve NRMSE target.
    let spec = FieldSpec::new(2, 32, 16, 16);
    let block_frames = 8;
    let target = Some(ErrorTarget::Nrmse(1e-3));
    let kinds = [
        (DatasetKind::E3sm, "e3sm"),
        (DatasetKind::S3d, "s3d"),
        (DatasetKind::Jhtdb, "jhtdb"),
    ];
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    let codecs: [(&str, &dyn Codec); 2] = [("sz", &sz), ("zfp", &zfp)];

    let mut legs = Vec::new();
    let mut all_frames: Vec<Vec<u8>> = Vec::new();
    for (kind, kind_name) in kinds {
        let ds = generate(kind, &spec, 29);
        for (codec_name, codec) in codecs {
            let mut off_bytes = 0usize;
            let mut on_bytes = 0usize;
            let mut staged_frames = 0usize;
            let mut total_frames = 0usize;
            let mut roundtrip_ok = true;
            for variable in &ds.variables {
                let (container, _) = codec.compress_variable(variable, block_frames, target);
                let off = container.encode_v2();
                let on = container.encode();
                off_bytes += off.len();
                on_bytes += on.len();
                total_frames += container.blocks().len();
                staged_frames += container.staged_frames();
                // Bit-identical round trip: the staged stream must decode to
                // exactly the unstaged frames (and the v2 stream to the
                // same).
                let decoded = Container::decode(&on).expect("staged container decodes");
                roundtrip_ok &= decoded == container;
                roundtrip_ok &= Container::decode(&off).expect("v2 decodes") == container;
                all_frames.extend(container.blocks().iter().cloned());
            }
            legs.push(Leg {
                dataset: kind_name,
                codec: codec_name,
                off_bytes,
                on_bytes,
                staged_frames,
                total_frames,
                roundtrip_ok,
            });
        }
    }

    let (compress_mb_s, decompress_mb_s) = measure_stage_throughput(&all_frames, window_s);

    let off_total: usize = legs.iter().map(|l| l.off_bytes).sum();
    let on_total: usize = legs.iter().map(|l| l.on_bytes).sum();
    let total_reduction = 1.0 - on_total as f64 / off_total.max(1) as f64;
    let all_roundtrip = legs.iter().all(|l| l.roundtrip_ok);

    let mut csv = String::from(
        "dataset,codec,stage_off_bytes,stage_on_bytes,reduction,staged_frames,total_frames,roundtrip_ok\n",
    );
    for leg in &legs {
        println!(
            "{:>6} {:>4}: stage-off {:7} B, stage-on {:7} B  ({:5.1}% smaller, {}/{} frames staged, roundtrip {})",
            leg.dataset,
            leg.codec,
            leg.off_bytes,
            leg.on_bytes,
            leg.reduction() * 100.0,
            leg.staged_frames,
            leg.total_frames,
            if leg.roundtrip_ok { "ok" } else { "FAILED" },
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{}\n",
            leg.dataset,
            leg.codec,
            leg.off_bytes,
            leg.on_bytes,
            leg.reduction(),
            leg.staged_frames,
            leg.total_frames,
            leg.roundtrip_ok
        ));
    }
    let staged_total: usize = legs.iter().map(|l| l.staged_frames).sum();
    let frames_total: usize = legs.iter().map(|l| l.total_frames).sum();
    csv.push_str(&format!(
        "total,all,{off_total},{on_total},{total_reduction:.4},{staged_total},{frames_total},{all_roundtrip}\n"
    ));
    println!(
        "  total: {off_total} -> {on_total} B ({:.1}% smaller); stage throughput {compress_mb_s:.1} MB/s compress, {decompress_mb_s:.1} MB/s decompress",
        total_reduction * 100.0
    );
    write_result("entropy_stage.csv", &csv);

    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"stage_off_bytes\": {off},\n",
            "  \"stage_on_bytes\": {on},\n",
            "  \"reduction\": {reduction:.4},\n",
            "  \"required_reduction\": {required:.2},\n",
            "  \"roundtrip_bit_identical\": {roundtrip},\n",
            "  \"stage_compress_mb_per_s\": {cmbs:.2},\n",
            "  \"stage_decompress_mb_per_s\": {dmbs:.2}\n",
            "}}\n"
        ),
        quick = quick,
        backend = gld_kernels::active(),
        off = off_total,
        on = on_total,
        reduction = total_reduction,
        required = REQUIRED_REDUCTION,
        roundtrip = all_roundtrip,
        cmbs = compress_mb_s,
        dmbs = decompress_mb_s,
    );
    write_root_result("BENCH_entropy_stage.json", &json);

    if check {
        let mut failures = Vec::new();
        if !all_roundtrip {
            failures.push("staged containers did not round-trip bit-identically".to_string());
        }
        if total_reduction < REQUIRED_REDUCTION {
            failures.push(format!(
                "stage-on total only {:.1}% smaller than stage-off (gate: {:.0}%)",
                total_reduction * 100.0,
                REQUIRED_REDUCTION * 100.0
            ));
        }
        if !failures.is_empty() {
            eprintln!("entropy-stage gate failed:\n  {}", failures.join("\n  "));
            std::process::exit(1);
        }
        println!("entropy-stage gate passed");
    }
}
