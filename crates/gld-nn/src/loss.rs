//! Loss functions shared by the VAE and diffusion training loops.

use crate::tape::Var;

/// Mean squared error between a prediction and a target, as a scalar
/// variable suitable for `backward`.
pub fn mse_loss(prediction: &Var, target: &Var) -> Var {
    prediction.sub(target).square().mean()
}

/// Mean absolute error between a prediction and a target.
pub fn l1_loss(prediction: &Var, target: &Var) -> Var {
    prediction.sub(target).abs().mean()
}

/// Mean squared error restricted to a subset of frames along axis 0.
///
/// This is the conditional-diffusion objective of the paper (Eq. 7): the loss
/// is computed only on the frames designated for generation, never on the
/// conditioning keyframes.
pub fn masked_frame_mse(prediction: &Var, target: &Var, frame_indices: &[usize]) -> Var {
    assert!(
        !frame_indices.is_empty(),
        "masked_frame_mse needs at least one frame"
    );
    let pred_sel = select_frames(prediction, frame_indices);
    let tgt_sel = select_frames(target, frame_indices);
    pred_sel.sub(&tgt_sel).square().mean()
}

fn select_frames(v: &Var, frame_indices: &[usize]) -> Var {
    // Frames are assumed contiguous ranges rarely, so gather one-by-one and
    // concatenate along axis 0 (cheap for the N ≤ 16 frames used here).
    let slices: Vec<Var> = frame_indices
        .iter()
        .map(|&i| v.slice_axis(0, i, i + 1))
        .collect();
    if slices.len() == 1 {
        return slices[0].clone();
    }
    let refs: Vec<&Var> = slices.iter().collect();
    // All slices live on the same tape as `v`.
    slices[0].tape_concat(&refs)
}

impl Var {
    /// Concatenates `vars` (which must live on this variable's tape) along
    /// axis 0.  Helper used by the frame-masked losses.
    pub fn tape_concat(&self, vars: &[&Var]) -> Var {
        self.tape().concat(vars, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use gld_tensor::{Tensor, TensorRng};

    #[test]
    fn mse_of_identical_is_zero() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let b = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        assert_eq!(mse_loss(&a, &b).value().item(), 0.0);
        assert_eq!(l1_loss(&a, &b).value().item(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(vec![0.0, 0.0], &[2]));
        let b = tape.constant(Tensor::from_vec(vec![2.0, 4.0], &[2]));
        assert!((mse_loss(&a, &b).value().item() - 10.0).abs() < 1e-6);
        assert!((l1_loss(&a, &b).value().item() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn masked_frame_mse_ignores_conditioning_frames() {
        let tape = Tape::new();
        let mut rng = TensorRng::new(0);
        let target = rng.randn(&[4, 2, 3, 3]);
        // Prediction is perfect on frames 1 and 3, garbage on 0 and 2.
        let mut pred = target.clone();
        let noise = rng.randn(&[1, 2, 3, 3]).scale(100.0);
        pred.index_assign(0, &[0], &noise);
        pred.index_assign(0, &[2], &noise);
        let p = tape.constant(pred);
        let t = tape.constant(target);
        let loss_generated = masked_frame_mse(&p, &t, &[1, 3]);
        assert!(loss_generated.value().item() < 1e-10);
        let loss_all = mse_loss(&p, &t);
        assert!(loss_all.value().item() > 1.0);
    }

    #[test]
    fn mse_gradient_points_towards_target() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![1.0, -1.0], &[2]));
        let tgt = tape.constant(Tensor::from_vec(vec![0.0, 0.0], &[2]));
        let loss = mse_loss(&pred, &tgt);
        let grads = loss.backward();
        let g = grads[pred.id()].clone().unwrap();
        // d/dp of mean((p-t)^2) = 2(p-t)/n = (p-t) here (n = 2).
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
        assert!((g.data()[1] + 1.0).abs() < 1e-6);
    }
}
