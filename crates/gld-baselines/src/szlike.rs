//! SZ3-like prediction-based error-bounded compressor.
//!
//! The scheme follows the classic SZ recipe:
//!
//! 1. walk the volume in raster order and predict every value with a 3-D
//!    Lorenzo predictor evaluated on already-reconstructed neighbours,
//! 2. quantise the prediction residual uniformly with bin width `2·eb`
//!    (which bounds the point-wise error by `eb`),
//! 3. entropy-code the quantisation codes with a histogram model and an
//!    arithmetic coder; values whose residual falls outside the code range
//!    are stored verbatim ("unpredictable" escapes) and therefore carry zero
//!    error.
//!
//! Like SZ3 itself the method excels on smooth fields, where almost every
//! residual lands in the zero bin.

use crate::header::{BlockHeader, Codec};
use crate::ErrorBoundedCompressor;
use gld_entropy::{ArithmeticDecoder, ArithmeticEncoder, HistogramModel};
use gld_tensor::Tensor;

/// Largest representable quantisation code; residuals beyond this are stored
/// as raw floats.
const MAX_CODE: i32 = 4096;
/// Sentinel code marking an unpredictable (verbatim) value.
const UNPREDICTABLE: i32 = MAX_CODE + 1;

/// Prediction-based error-bounded compressor (SZ3-like).
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor;

impl SzCompressor {
    /// Creates the compressor.
    pub fn new() -> Self {
        SzCompressor
    }

    /// Reinterprets an arbitrary rank-1..4 tensor as a 3-D volume
    /// `[planes, rows, cols]` without copying semantics that matter for
    /// prediction quality: trailing dimensions remain spatial.
    fn as_volume_dims(dims: &[usize]) -> (usize, usize, usize) {
        match dims.len() {
            1 => (1, 1, dims[0]),
            2 => (1, dims[0], dims[1]),
            3 => (dims[0], dims[1], dims[2]),
            4 => (dims[0] * dims[1], dims[2], dims[3]),
            r => panic!("unsupported rank {r}"),
        }
    }
}

/// 3-D Lorenzo prediction from reconstructed neighbours.
#[inline]
fn lorenzo_predict(
    recon: &[f32],
    (d0, d1, d2): (usize, usize, usize),
    i: usize,
    j: usize,
    k: usize,
) -> f32 {
    let at = |ii: isize, jj: isize, kk: isize| -> f32 {
        if ii < 0 || jj < 0 || kk < 0 {
            0.0
        } else {
            recon[(ii as usize * d1 + jj as usize) * d2 + kk as usize]
        }
    };
    let (i, j, k) = (i as isize, j as isize, k as isize);
    let _ = d0;
    at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
        - at(i - 1, j - 1, k)
        - at(i - 1, j, k - 1)
        - at(i, j - 1, k - 1)
        + at(i - 1, j - 1, k - 1)
}

impl ErrorBoundedCompressor for SzCompressor {
    fn name(&self) -> &'static str {
        "SZ3-like"
    }

    fn compress(&self, data: &Tensor, abs_error: f32) -> Vec<u8> {
        assert!(abs_error > 0.0, "absolute error bound must be positive");
        let dims = Self::as_volume_dims(data.dims());
        let (d0, d1, d2) = dims;
        let n = d0 * d1 * d2;
        assert_eq!(n, data.numel());
        let src = data.data();
        let mut recon = vec![0.0f32; n];
        let mut codes = Vec::with_capacity(n);
        let mut raw_values: Vec<f32> = Vec::new();
        let two_eb = 2.0 * abs_error;

        // Pass 1: prediction + quantisation.
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let idx = (i * d1 + j) * d2 + k;
                    let val = src[idx];
                    let pred = lorenzo_predict(&recon, dims, i, j, k);
                    let diff = val - pred;
                    let q = (diff / two_eb).round();
                    if q.abs() <= MAX_CODE as f32 {
                        let q = q as i32;
                        let r = pred + q as f32 * two_eb;
                        if (r - val).abs() <= abs_error && r.is_finite() {
                            codes.push(q);
                            recon[idx] = r;
                            continue;
                        }
                    }
                    codes.push(UNPREDICTABLE);
                    raw_values.push(val);
                    recon[idx] = val;
                }
            }
        }

        // Pass 2: entropy coding.
        let model = HistogramModel::fit(&codes);
        let mut out = Vec::new();
        BlockHeader::new(Codec::SzLike, data, abs_error).write(&mut out);
        let model_bytes = model.to_bytes();
        out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&model_bytes);
        let mut enc = ArithmeticEncoder::new();
        let mut raw_iter = raw_values.iter();
        for &c in &codes {
            model.encode(&mut enc, &[c]);
            if c == UNPREDICTABLE {
                let raw = raw_iter.next().expect("raw value missing");
                enc.encode_bits_raw(raw.to_bits() as u64, 32);
            }
        }
        let stream = enc.finish();
        out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        out.extend_from_slice(&stream);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> Tensor {
        let (header, mut off) = BlockHeader::read(bytes);
        assert_eq!(header.codec, Codec::SzLike, "not an SZ3-like stream");
        let model_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let (model, used) = HistogramModel::from_bytes(&bytes[off..off + model_len]);
        assert_eq!(used, model_len);
        off += model_len;
        let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let stream = &bytes[off..off + stream_len];

        let dims = Self::as_volume_dims(&header.dims);
        let (d0, d1, d2) = dims;
        let n = header.numel();
        let two_eb = 2.0 * header.abs_error;
        let mut dec = ArithmeticDecoder::new(stream);
        let mut recon = vec![0.0f32; n];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let idx = (i * d1 + j) * d2 + k;
                    let code = model.decode(&mut dec, 1)[0];
                    if code == UNPREDICTABLE {
                        let bits = dec.decode_bits_raw(32) as u32;
                        recon[idx] = f32::from_bits(bits);
                    } else {
                        let pred = lorenzo_predict(&recon, dims, i, j, k);
                        recon[idx] = pred + code as f32 * two_eb;
                    }
                }
            }
        }
        Tensor::from_vec(recon, &header.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression_ratio;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_tensor::stats::max_abs_error;
    use gld_tensor::TensorRng;
    use proptest::prelude::*;

    fn check_bound(data: &Tensor, eb: f32) -> (f64, f32) {
        let sz = SzCompressor::new();
        let (recon, size) = sz.roundtrip(data, eb);
        assert_eq!(recon.dims(), data.dims());
        let err = max_abs_error(data, &recon);
        assert!(
            err <= eb * 1.0001,
            "error {err} exceeds bound {eb} for dims {:?}",
            data.dims()
        );
        (compression_ratio(data, size), err)
    }

    #[test]
    fn error_bound_holds_on_all_synthetic_datasets() {
        let spec = FieldSpec::new(1, 8, 16, 16);
        for kind in DatasetKind::all() {
            let ds = generate(kind, &spec, 3);
            let frames = &ds.variables[0].frames;
            let range = frames.max() - frames.min();
            for rel in [1e-2, 1e-3] {
                let (ratio, _) = check_bound(frames, rel * range);
                assert!(ratio > 1.0, "no compression achieved on {kind:?}");
            }
        }
    }

    #[test]
    fn larger_bound_gives_higher_ratio() {
        let spec = FieldSpec::new(1, 8, 16, 16);
        let ds = generate(DatasetKind::E3sm, &spec, 5);
        let frames = &ds.variables[0].frames;
        let range = frames.max() - frames.min();
        let sz = SzCompressor::new();
        let loose = sz.compress(frames, 1e-2 * range).len();
        let tight = sz.compress(frames, 1e-4 * range).len();
        assert!(
            loose < tight,
            "loose {loose} should be smaller than tight {tight}"
        );
    }

    #[test]
    fn smooth_data_compresses_much_better_than_noise() {
        let mut rng = TensorRng::new(1);
        let noise = rng.randn(&[4, 16, 16]);
        let smooth = Tensor::from_vec(
            (0..4 * 16 * 16)
                .map(|i| ((i % 256) as f32 / 40.0).sin())
                .collect(),
            &[4, 16, 16],
        );
        let sz = SzCompressor::new();
        let eb = 1e-3;
        let noise_size = sz.compress(&noise, eb).len();
        let smooth_size = sz.compress(&smooth, eb).len();
        assert!(
            smooth_size * 2 < noise_size,
            "smooth {smooth_size} vs noise {noise_size}"
        );
    }

    #[test]
    fn handles_constant_and_tiny_inputs() {
        let sz = SzCompressor::new();
        let constant = Tensor::full(&[4, 4, 4], 3.75);
        let (recon, size) = sz.roundtrip(&constant, 1e-6);
        assert!(max_abs_error(&constant, &recon) <= 1e-6);
        assert!(size < constant.numel() * 4);
        let single = Tensor::from_vec(vec![42.0], &[1]);
        let (recon, _) = sz.roundtrip(&single, 1e-3);
        assert!((recon.data()[0] - 42.0).abs() <= 1e-3);
    }

    #[test]
    fn rank2_and_rank4_inputs_supported() {
        let mut rng = TensorRng::new(2);
        let sz = SzCompressor::new();
        let img = rng.randn(&[24, 24]);
        let (recon, _) = sz.roundtrip(&img, 1e-2);
        assert!(max_abs_error(&img, &recon) <= 1e-2 * 1.0001);
        let vol4 = rng.randn(&[2, 3, 8, 8]);
        let (recon, _) = sz.roundtrip(&vol4, 1e-2);
        assert_eq!(recon.dims(), vol4.dims());
        assert!(max_abs_error(&vol4, &recon) <= 1e-2 * 1.0001);
    }

    #[test]
    fn outliers_are_stored_verbatim() {
        // A field with huge spikes: the spikes must round-trip within bound.
        let mut data = Tensor::zeros(&[2, 8, 8]);
        data.set(&[0, 3, 3], 1e20);
        data.set(&[1, 7, 7], -1e20);
        let sz = SzCompressor::new();
        let (recon, _) = sz.roundtrip(&data, 1e-3);
        assert!((recon.at(&[0, 3, 3]) - 1e20).abs() <= 1e14); // f32 precision, not bound
        assert!(max_abs_error(&data, &recon) <= 1e14);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_error_bound_always_holds(
            seed in 0u64..500,
            eb_exp in -4i32..-1,
            d0 in 1usize..4,
            d1 in 4usize..12,
            d2 in 4usize..12,
        ) {
            let mut rng = TensorRng::new(seed);
            let data = rng.randn(&[d0, d1, d2]).scale(5.0);
            let eb = 10f32.powi(eb_exp) * 10.0;
            let sz = SzCompressor::new();
            let (recon, _) = sz.roundtrip(&data, eb);
            prop_assert!(max_abs_error(&data, &recon) <= eb * 1.0001);
        }
    }
}
