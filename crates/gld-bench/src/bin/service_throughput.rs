//! Service throughput benchmark: requests per second and p50/p99 latency
//! through a live in-process sharded compression server, in the style of
//! `pool_dispatch`.
//!
//! Three sections, each swept over client counts:
//!
//! 1. **ping** — protocol + dispatch floor (no codec work);
//! 2. **compress** — SZ3-like containers streamed back from the per-shard
//!    executors, once per negotiated container feature level (stage-off
//!    v2, stage-on v3, shared-profile v4);
//! 3. **decompress** — each of those containers back into frames.
//!
//! Every client thread uses its own connection and key (hash-sharded), so
//! higher client counts genuinely spread across shards.  Results land in
//! `results/service_throughput.csv`; next to the client-observed p50/p99
//! each row carries the **server-side** per-op p50/p99, scraped from the
//! live `--metrics-addr` Prometheus endpoint after the section's requests
//! (cumulative per op — the gap between the columns is the wire plus
//! client-side time).
//!
//! A fourth **pipelined** section drives `--pipelined-clients N` (default
//! 4) keepalive connections, each keeping a window of requests in flight
//! over the [`PipelinedClient`], with per-request latency matched back by
//! request id and every compress verified bit-identical to a blocking
//! response for the same key.  `--check` enforces the floor: deep-window
//! pipelined ping throughput must be at least 2x the one-outstanding
//! baseline — the same connections and machinery, window clamped to 1 —
//! from the same run.

use gld_bench::write_result;
use gld_core::CodecId;
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::{CodecRegistry, PipelinedClient, Reply, Server, ServiceClient, ServiceConfig};
use std::collections::HashMap;
use std::time::Instant;

/// Latency percentile over a sorted sample, nearest-rank.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// One HTTP/1.0 GET against the live server's `--metrics-addr` endpoint,
/// returning the Prometheus exposition body — the same scrape CI's smoke
/// job performs.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write metrics request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read metrics response");
    let (_, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    body.to_string()
}

/// Server-side `(p50_ms, p99_ms)` for one op, scraped from the endpoint's
/// derived `glds_request_duration_ns_quantile` gauges.  Cumulative over the
/// whole run so far (histograms never reset), which is why each section
/// scrapes immediately after its own requests.
fn server_latency_ms(addr: std::net::SocketAddr, op: &str) -> (f64, f64) {
    let body = scrape_metrics(addr);
    let needle = format!("op=\"{op}\"");
    let quantile = |q: &str| {
        gld_obs::registry::scrape_value(
            &body,
            "glds_request_duration_ns",
            "_quantile",
            &[&needle, &format!("q=\"{q}\"")],
        )
        .unwrap_or_else(|| panic!("endpoint serves a {op} {q} quantile"))
            / 1e6
    };
    (quantile("0.5"), quantile("0.99"))
}

/// One container feature level the session can negotiate: which `Hello`
/// bits to advertise, and the container version an SZ3-like compress
/// response comes back as.
#[derive(Clone, Copy)]
struct FeatureLeg {
    label: &'static str,
    stage: bool,
    profiles: bool,
    notes: &'static str,
}

const FEATURE_LEGS: [FeatureLeg; 3] = [
    FeatureLeg {
        label: "stage-off",
        stage: false,
        profiles: false,
        notes: "v2 containers (pre-stage client)",
    },
    FeatureLeg {
        label: "stage-on",
        stage: true,
        profiles: false,
        notes: "v3 containers (per-frame stage)",
    },
    FeatureLeg {
        label: "profiles",
        stage: true,
        profiles: true,
        notes: "v4 containers (shared profiles + warm stage)",
    },
];

struct RunStats {
    elapsed_s: f64,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs `requests_per_client` requests on each of `clients` threads and
/// merges the per-request latencies.  `setup` runs once per connection
/// before timing starts (feature negotiation lives there, not in the
/// measured window).
fn run(
    addr: std::net::SocketAddr,
    clients: usize,
    requests_per_client: usize,
    setup: impl Fn(&mut ServiceClient) + Sync,
    request: impl Fn(&mut ServiceClient, &str, usize) + Sync,
) -> RunStats {
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let setup = &setup;
        let request = &request;
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    setup(&mut client);
                    let key = format!("bench-client-{client_index}");
                    let mut samples = Vec::with_capacity(requests_per_client);
                    for i in 0..requests_per_client {
                        let t0 = Instant::now();
                        request(&mut client, &key, i);
                        samples.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench client thread"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    RunStats {
        elapsed_s,
        req_per_s: latencies.len() as f64 / elapsed_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

/// Runs `requests_per_client` pipelined requests on each of `clients`
/// threads, keeping up to `window` outstanding per connection.  Latency is
/// submit-to-reply, matched by request id (so it includes pipeline
/// queueing — the price of the window is part of the number).
fn run_pipelined(
    addr: std::net::SocketAddr,
    clients: usize,
    requests_per_client: usize,
    window: usize,
    setup: impl Fn(&mut ServiceClient, &str) -> Option<Vec<u8>> + Sync,
    submit: impl Fn(&mut PipelinedClient, &str) -> u64 + Sync,
    verify: impl Fn(&str, Option<&[u8]>, &Reply) + Sync,
) -> RunStats {
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let setup = &setup;
        let submit = &submit;
        let verify = &verify;
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    let key = format!("bench-client-{client_index}");
                    let reference = setup(&mut client, &key);
                    let mut pipe = client.into_pipelined();
                    let mut submitted: HashMap<u64, Instant> = HashMap::new();
                    let mut sent = 0usize;
                    let mut samples = Vec::with_capacity(requests_per_client);
                    while samples.len() < requests_per_client {
                        // Refill in half-window bursts so submits batch into
                        // one write instead of degenerating to one write per
                        // reply in steady state.
                        if sent < requests_per_client && pipe.outstanding() <= window / 2 {
                            while sent < requests_per_client && pipe.outstanding() < window {
                                let id = submit(&mut pipe, &key);
                                submitted.insert(id, Instant::now());
                                sent += 1;
                            }
                        }
                        let (id, reply) = pipe.recv().expect("pipelined recv");
                        let t0 = submitted.remove(&id).expect("reply matches a submit");
                        samples.push(t0.elapsed().as_secs_f64() * 1e3);
                        verify(&key, reference.as_deref(), &reply);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pipelined bench client thread"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    RunStats {
        elapsed_s,
        req_per_s: latencies.len() as f64 / elapsed_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn main() {
    let mut pipelined_clients = 4usize;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pipelined-clients" => {
                pipelined_clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pipelined-clients takes a count");
            }
            "--check" => check = true,
            other => panic!("unknown flag {other:?} (see the crate docs)"),
        }
    }

    let shards = 4;
    let server = Server::start(
        ServiceConfig {
            shards,
            shard_window: 4,
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    )
    .expect("start in-process server");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("metrics endpoint is up");
    println!(
        "service-throughput bench — {shards} shards on {addr}, {} pool workers\n",
        rayon::current_num_threads()
    );
    let mut csv = String::from(
        "section,clients,requests,elapsed_s,req_per_s,p50_ms,p99_ms,server_p50_ms,server_p99_ms,notes\n",
    );

    // One variable per client key; compress once per feature level up front
    // for the decompress section.
    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 32, 32, 32), 61);
    let variable = &ds.variables[0];
    let containers: Vec<Vec<u8>> = FEATURE_LEGS
        .iter()
        .map(|leg| {
            let mut client = ServiceClient::connect(addr).expect("connect");
            client
                .hello_with_options(&[CodecId::SzLike], leg.stage, leg.profiles)
                .expect("warmup hello");
            client
                .compress_as(CodecId::SzLike, "bench-warmup", variable, 8, None)
                .expect("warmup compress")
        })
        .collect();

    let client_counts = [1usize, 2, 4];
    let requests = 32usize;
    // Pings are microseconds each: sample enough of them that the req/s
    // figures (and the `--check` floor below) are stable run to run.
    let ping_requests = 4096usize;

    for &clients in &client_counts {
        let stats = run(
            addr,
            clients,
            ping_requests,
            |client| {
                for _ in 0..32 {
                    client.ping().expect("warmup ping");
                }
            },
            |client, _key, _i| {
                client.ping().expect("ping");
            },
        );
        let (server_p50, server_p99) = server_latency_ms(metrics_addr, "ping");
        println!(
            "ping                  {clients} client(s): {:>8.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   server p50 {server_p50:.3} p99 {server_p99:.3}",
            stats.req_per_s, stats.p50_ms, stats.p99_ms
        );
        csv.push_str(&format!(
            "ping,{clients},{},{:.4},{:.1},{:.4},{:.4},{server_p50:.4},{server_p99:.4},protocol floor\n",
            clients * ping_requests,
            stats.elapsed_s,
            stats.req_per_s,
            stats.p50_ms,
            stats.p99_ms
        ));
    }

    for leg in &FEATURE_LEGS {
        for &clients in &client_counts {
            let stats = run(
                addr,
                clients,
                requests,
                |client| {
                    client
                        .hello_with_options(&[CodecId::SzLike], leg.stage, leg.profiles)
                        .expect("hello");
                },
                |client, key, _i| {
                    let bytes = client
                        .compress_as(CodecId::SzLike, key, variable, 8, None)
                        .expect("compress");
                    assert!(!bytes.is_empty());
                },
            );
            let (server_p50, server_p99) = server_latency_ms(metrics_addr, "compress");
            println!(
                "compress   {:>9} {clients} client(s): {:>8.1} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   server p50 {server_p50:.3} p99 {server_p99:.3}",
                leg.label, stats.req_per_s, stats.p50_ms, stats.p99_ms
            );
            csv.push_str(&format!(
                "compress/{},{clients},{},{:.4},{:.1},{:.4},{:.4},{server_p50:.4},{server_p99:.4},SZ3-like 32x32x32 via shard executors: {}\n",
                leg.label,
                clients * requests,
                stats.elapsed_s,
                stats.req_per_s,
                stats.p50_ms,
                stats.p99_ms,
                leg.notes
            ));
        }
    }

    for (leg, container) in FEATURE_LEGS.iter().zip(&containers) {
        for &clients in &client_counts {
            let container = &container[..];
            let stats = run(
                addr,
                clients,
                requests,
                |_client| {},
                move |client, key, _i| {
                    let blocks = client.decompress(key, container).expect("decompress");
                    assert_eq!(blocks.len(), 4);
                },
            );
            let (server_p50, server_p99) = server_latency_ms(metrics_addr, "decompress");
            println!(
                "decompress {:>9} {clients} client(s): {:>8.1} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   server p50 {server_p50:.3} p99 {server_p99:.3}",
                leg.label, stats.req_per_s, stats.p50_ms, stats.p99_ms
            );
            csv.push_str(&format!(
                "decompress/{},{clients},{},{:.4},{:.1},{:.4},{:.4},{server_p50:.4},{server_p99:.4},4-block container to frames: {}\n",
                leg.label,
                clients * requests,
                stats.elapsed_s,
                stats.req_per_s,
                stats.p50_ms,
                stats.p99_ms,
                leg.notes
            ));
        }
    }

    // ── pipelined section ──────────────────────────────────────────────
    // Many keepalive connections, each a window of requests deep.  Ping
    // measures the event-loop dispatch ceiling; compress verifies every
    // pipelined response bit-identical to a blocking response for the same
    // key taken during setup.
    const PIPE_WINDOW: usize = 64;
    let pipelined_pings = 8192usize;

    // The one-outstanding baseline for the `--check` floor: identical
    // connections, threads and client machinery, window clamped to 1 —
    // what these exact clients achieve without pipelining.
    let baseline_stats = run_pipelined(
        addr,
        pipelined_clients,
        pipelined_pings / 8,
        1,
        |client, _key| {
            for _ in 0..32 {
                client.ping().expect("warmup ping");
            }
            None
        },
        |pipe, _key| pipe.submit_ping().expect("submit ping"),
        |_key, _reference, reply| assert!(matches!(reply, Reply::Pong)),
    );
    println!(
        "\npipelined ping        {pipelined_clients} conn(s) x 1 deep: {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
        baseline_stats.req_per_s, baseline_stats.p50_ms, baseline_stats.p99_ms
    );
    let (server_p50, server_p99) = server_latency_ms(metrics_addr, "ping");
    csv.push_str(&format!(
        "pipelined-ping-window1,{pipelined_clients},{},{:.4},{:.1},{:.4},{:.4},{server_p50:.4},{server_p99:.4},one-outstanding baseline\n",
        pipelined_clients * (pipelined_pings / 8),
        baseline_stats.elapsed_s,
        baseline_stats.req_per_s,
        baseline_stats.p50_ms,
        baseline_stats.p99_ms
    ));

    let ping_stats = run_pipelined(
        addr,
        pipelined_clients,
        pipelined_pings,
        PIPE_WINDOW,
        |client, _key| {
            for _ in 0..32 {
                client.ping().expect("warmup ping");
            }
            None
        },
        |pipe, _key| pipe.submit_ping().expect("submit ping"),
        |_key, _reference, reply| assert!(matches!(reply, Reply::Pong)),
    );
    println!(
        "pipelined ping        {pipelined_clients} conn(s) x {PIPE_WINDOW} deep: {:>8.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
        ping_stats.req_per_s, ping_stats.p50_ms, ping_stats.p99_ms
    );
    let (server_p50, server_p99) = server_latency_ms(metrics_addr, "ping");
    csv.push_str(&format!(
        "pipelined-ping,{pipelined_clients},{},{:.4},{:.1},{:.4},{:.4},{server_p50:.4},{server_p99:.4},window {PIPE_WINDOW} per conn\n",
        pipelined_clients * pipelined_pings,
        ping_stats.elapsed_s,
        ping_stats.req_per_s,
        ping_stats.p50_ms,
        ping_stats.p99_ms
    ));

    let compress_stats = run_pipelined(
        addr,
        pipelined_clients,
        16,
        8,
        |client, key| {
            client.hello(&[CodecId::SzLike]).expect("hello");
            Some(
                client
                    .compress_as(CodecId::SzLike, key, variable, 8, None)
                    .expect("blocking reference compress"),
            )
        },
        |pipe, key| {
            pipe.submit_compress(key, variable, 8, None)
                .expect("submit compress")
        },
        |key, reference, reply| match reply {
            Reply::Compressed(bytes) => assert_eq!(
                Some(bytes.as_slice()),
                reference,
                "{key}: pipelined compress differs from the blocking response"
            ),
            other => panic!("{key}: expected a compress reply, got {other:?}"),
        },
    );
    println!(
        "pipelined compress    {pipelined_clients} conn(s) x 8 deep: {:>8.1} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
        compress_stats.req_per_s, compress_stats.p50_ms, compress_stats.p99_ms
    );
    let (server_p50, server_p99) = server_latency_ms(metrics_addr, "compress");
    csv.push_str(&format!(
        "pipelined-compress,{pipelined_clients},{},{:.4},{:.1},{:.4},{:.4},{server_p50:.4},{server_p99:.4},SZ3-like 32x32x32 bit-identical to blocking\n",
        pipelined_clients * 16,
        compress_stats.elapsed_s,
        compress_stats.req_per_s,
        compress_stats.p50_ms,
        compress_stats.p99_ms
    ));

    if check {
        let floor = 2.0 * baseline_stats.req_per_s;
        assert!(
            ping_stats.req_per_s >= floor,
            "--check: pipelined ping {:.0} req/s is under the floor of 2x the one-outstanding \
             baseline ({:.0} req/s over the same connections)",
            ping_stats.req_per_s,
            floor
        );
        println!(
            "check OK: pipelined ping {:.0} req/s >= 2x one-outstanding baseline ({:.0} req/s)",
            ping_stats.req_per_s, baseline_stats.req_per_s
        );
    }

    let metrics = server.shutdown();
    csv.push_str(&format!(
        "meta,,,,,,,,,\"{} requests completed, {} rejected, peak in-flight per shard {:?}\"\n",
        metrics.completed(),
        metrics.requests_rejected,
        metrics
            .shards
            .iter()
            .map(|s| s.peak_in_flight)
            .collect::<Vec<_>>()
    ));
    write_result("service_throughput.csv", &csv);
}
