//! Protocol fuzz battery: the `GLDS` decoders must never panic and must
//! always yield a typed [`ProtocolError`] on bad input — over arbitrary
//! bytes, truncations of valid frames, and single-bit flips of valid
//! request *and* response frames (the corruption-detection idiom of
//! `tests/container_roundtrip.rs`, pointed at the wire layer).
//!
//! The pipelined half of the battery points the same discipline at
//! [`StreamParser`], the incremental decoder behind the event-loop front
//! end: multi-frame streams with interleaved, duplicate and out-of-order
//! request ids must reassemble identically however the bytes are split,
//! and garbage anywhere in the stream must poison the parser (typed
//! `Fatal`, sticky, no desync) — never panic it.

use gld_core::ErrorTarget;
use gld_service::protocol::{
    self, decode_blocks_body, decode_frame, CompressRequest, DecompressRequest, FrameHeader,
    HelloRequest, HelloResponse, Op, ProtocolError, RawFrameHeader, Status, StreamEvent,
    StreamParser, HEADER_LEN, MAX_BODY_LEN,
};
use gld_service::{CodecRegistry, Server, ServiceConfig};
use gld_tensor::Tensor;
use proptest::prelude::*;

/// A representative valid compress-request frame to mutate.
fn valid_compress_frame(key_seed: usize, frames: usize) -> Vec<u8> {
    let request = CompressRequest {
        key: format!("variable_{key_seed}"),
        block_frames: 4,
        target: Some(ErrorTarget::Nrmse(1e-2)),
        dims: [frames as u32, 4, 4],
        data: (0..frames * 16).map(|i| (i as f32).sin()).collect(),
    };
    let body = request.encode_body();
    let header = FrameHeader::request(Op::Compress, 2, 42, body.len() as u64);
    let mut frame = header.encode().to_vec();
    frame.extend_from_slice(&body);
    frame
}

/// A representative valid decompress-response frame (blocks body).
fn valid_blocks_frame() -> Vec<u8> {
    let blocks = vec![
        Tensor::arange(4 * 3 * 3).reshape(&[4, 3, 3]),
        Tensor::ones(&[2, 3, 3]),
    ];
    let body = decode_blocks_roundtrip_body(&blocks);
    let header = FrameHeader::response(Op::Decompress, 2, Status::Ok, 7, body.len() as u64);
    let mut frame = header.encode().to_vec();
    frame.extend_from_slice(&body);
    frame
}

fn decode_blocks_roundtrip_body(blocks: &[Tensor]) -> Vec<u8> {
    gld_service::protocol::encode_blocks_body(blocks)
}

/// Exercises every decoder layer on one byte string.  Panics propagate and
/// fail the proptest; anything else is by definition a typed result.
fn drive_all_decoders(bytes: &[u8]) {
    let whole = decode_frame(bytes);
    if let Ok((header, body)) = &whole {
        // A frame that decodes structurally gets its body parsed under
        // every op interpretation the server and client use.
        let _ = header;
        let _ = CompressRequest::decode_body(body);
        let _ = DecompressRequest::decode_body(body);
        let _ = HelloRequest::decode_body(body);
        let _ = HelloResponse::decode_body(body);
        let _ = decode_blocks_body(body);
    }
    if bytes.len() >= HEADER_LEN {
        let fixed: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        let _ = RawFrameHeader::decode(fixed).map(RawFrameHeader::validate);
        let _ = FrameHeader::decode(fixed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(
        bytes in prop::collection::vec(0u32..256, 0..96),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        drive_all_decoders(&bytes);
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        bytes in prop::collection::vec(0u32..256, 0..96),
    ) {
        // Start from protocol-shaped garbage so fuzzing spends its cases
        // past the magic/version gate instead of dying at byte 0.
        let mut framed = FrameHeader::request(Op::Compress, 2, 1, 0).encode().to_vec();
        framed.extend(bytes.into_iter().map(|b| b as u8));
        // Overwrite the declared body length with the actual tail length so
        // deeper body decoders run too.
        let tail = (framed.len() - HEADER_LEN) as u64;
        framed[24..32].copy_from_slice(&tail.to_le_bytes());
        drive_all_decoders(&framed);
    }

    #[test]
    fn truncations_of_a_valid_frame_always_yield_typed_errors(
        key in 0usize..1000,
        frames in 1usize..5,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = valid_compress_frame(key, frames * 4);
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        let result = decode_frame(&frame[..cut]);
        prop_assert!(
            matches!(result, Err(ProtocolError::Truncated { .. })),
            "cut at {cut}/{} must be Truncated, got {result:?}",
            frame.len()
        );
    }

    #[test]
    fn bit_flipped_request_frames_never_panic(
        key in 0usize..1000,
        frames in 1usize..5,
        flip_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut frame = valid_compress_frame(key, frames * 4);
        let at = ((frame.len() - 1) as f64 * flip_frac) as usize;
        frame[at] ^= 1 << bit;
        drive_all_decoders(&frame);
    }

    #[test]
    fn bit_flipped_response_frames_never_panic(
        flip_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut frame = valid_blocks_frame();
        let at = ((frame.len() - 1) as f64 * flip_frac) as usize;
        frame[at] ^= 1 << bit;
        drive_all_decoders(&frame);
    }

    #[test]
    fn arbitrary_bodies_never_panic_the_body_decoders(
        bytes in prop::collection::vec(0u32..256, 0..64),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = CompressRequest::decode_body(&bytes);
        let _ = DecompressRequest::decode_body(&bytes);
        let _ = HelloRequest::decode_body(&bytes);
        let _ = HelloResponse::decode_body(&bytes);
        let _ = decode_blocks_body(&bytes);
    }
}

// ─────────────────── pipelined stream fuzzing ──────────────────────────

/// One valid frame for a pipelined stream: a ping (empty body) or a small
/// compress request, carrying an arbitrary — possibly duplicate — id.
fn pipelined_frame(request_id: u64, kind: u8) -> Vec<u8> {
    if kind.is_multiple_of(2) {
        FrameHeader::request(Op::Ping, 0, request_id, 0)
            .encode()
            .to_vec()
    } else {
        let body = CompressRequest {
            key: format!("pipelined_{request_id}"),
            block_frames: 2,
            target: None,
            dims: [2, 2, 2],
            data: vec![kind as f32; 8],
        }
        .encode_body();
        let header = FrameHeader::request(Op::Compress, 2, request_id, body.len() as u64);
        let mut frame = header.encode().to_vec();
        frame.extend_from_slice(&body);
        frame
    }
}

/// Feeds `stream` to a fresh parser in the given chunk sizes (cycled) and
/// returns every event the parser produced, pumping after each push.
fn pump_in_chunks(stream: &[u8], chunks: &[usize]) -> Vec<StreamEvent> {
    let mut parser = StreamParser::new(MAX_BODY_LEN);
    let mut events = Vec::new();
    let mut at = 0;
    let mut chunk_index = 0;
    while at < stream.len() {
        let step = chunks
            .get(chunk_index % chunks.len().max(1))
            .copied()
            .unwrap_or(stream.len())
            .max(1)
            .min(stream.len() - at);
        chunk_index += 1;
        parser.push(&stream[at..at + step]);
        at += step;
        loop {
            match parser.next_event() {
                StreamEvent::Incomplete => break,
                fatal @ StreamEvent::Fatal { .. } => {
                    events.push(fatal);
                    return events;
                }
                frame => events.push(frame),
            }
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pipelined_streams_reassemble_identically_at_every_split(
        // Duplicate and out-of-order ids by construction: ids are drawn
        // from a tiny range, in arbitrary order.  Each spec packs an id
        // (spec / 4) and a frame kind (spec % 4).
        specs in prop::collection::vec(0u32..20, 1..6),
        chunks in prop::collection::vec(1usize..96, 1..16),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for &spec in &specs {
            let (id, kind) = ((spec / 4) as u64, (spec % 4) as u8);
            let frame = pipelined_frame(id, kind);
            let (header, body) = decode_frame(&frame).expect("generator emits valid frames");
            expected.push((header.request_id, header.op, body.to_vec()));
            stream.extend_from_slice(&frame);
        }

        let events = pump_in_chunks(&stream, &chunks);
        prop_assert_eq!(events.len(), expected.len());
        for (event, (id, op, body)) in events.into_iter().zip(expected) {
            match event {
                StreamEvent::Frame(raw, raw_body) => {
                    prop_assert_eq!(raw.request_id, id);
                    prop_assert_eq!(raw.op, op as u8);
                    prop_assert_eq!(raw_body, body);
                }
                other => return Err(TestCaseError::fail(format!("expected a frame, got {other:?}"))),
            }
        }
    }

    #[test]
    fn garbage_streams_poison_the_parser_without_panicking(
        bytes in prop::collection::vec(0u32..256, 0..128),
        chunks in prop::collection::vec(1usize..32, 1..8),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut parser = StreamParser::new(MAX_BODY_LEN);
        let mut at = 0;
        let mut chunk_index = 0;
        let mut fatal = None;
        while at < bytes.len() {
            let step = chunks[chunk_index % chunks.len()].min(bytes.len() - at);
            chunk_index += 1;
            parser.push(&bytes[at..at + step]);
            at += step;
            loop {
                match parser.next_event() {
                    StreamEvent::Incomplete => break,
                    StreamEvent::Fatal { error, request_id } => {
                        fatal = Some((error, request_id));
                        break;
                    }
                    StreamEvent::Frame(..) => {} // garbage may contain no valid magic
                }
            }
            if fatal.is_some() {
                break;
            }
        }
        if let Some((error, request_id)) = fatal {
            // Poisoning is sticky: the same typed event repeats, and
            // later pushes are ignored rather than re-synchronised.
            let buffered = parser.buffered();
            parser.push(&FrameHeader::request(Op::Ping, 0, 1, 0).encode());
            prop_assert_eq!(parser.buffered(), buffered);
            match parser.next_event() {
                StreamEvent::Fatal { error: again, request_id: id_again } => {
                    prop_assert_eq!(again, error);
                    prop_assert_eq!(id_again, request_id);
                }
                other => return Err(TestCaseError::fail(format!("poison must stick, got {other:?}"))),
            }
        }
    }

    #[test]
    fn mid_pipeline_garbage_never_desyncs_earlier_frames(
        specs in prop::collection::vec(0u32..20, 1..4),
        garbage in prop::collection::vec(0u32..256, HEADER_LEN..64),
    ) {
        // Clean frames followed by bytes that cannot open a frame: every
        // clean frame parses intact, then the parser poisons — it never
        // reinterprets garbage as a frame boundary.
        let mut stream = Vec::new();
        for &spec in &specs {
            stream.extend_from_slice(&pipelined_frame((spec / 4) as u64, (spec % 4) as u8));
        }
        let mut garbage: Vec<u8> = garbage.into_iter().map(|b| b as u8).collect();
        garbage[0] = b'X'; // guaranteed magic mismatch
        stream.extend_from_slice(&garbage);

        let events = pump_in_chunks(&stream, &[7]);
        prop_assert_eq!(events.len(), specs.len() + 1);
        for (event, &spec) in events.iter().zip(&specs) {
            match event {
                StreamEvent::Frame(raw, _) => prop_assert_eq!(raw.request_id, (spec / 4) as u64),
                other => return Err(TestCaseError::fail(format!("expected a frame, got {other:?}"))),
            }
        }
        prop_assert!(
            matches!(events.last(), Some(StreamEvent::Fatal { .. })),
            "garbage after clean frames must poison: {:?}",
            events.last()
        );
    }
}

#[test]
fn live_server_answers_batched_duplicate_and_out_of_order_ids() {
    // Request ids are the client's correlation key, not a server-side
    // uniqueness constraint: a single write carrying ids [7, 7, 3] gets
    // exactly three responses whose id multiset is {3, 7, 7}.
    use std::io::Write as _;
    let server =
        Server::start(ServiceConfig::default(), CodecRegistry::rule_based()).expect("start");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");

    let mut batch = Vec::new();
    for id in [7u64, 7, 3] {
        batch.extend_from_slice(&FrameHeader::request(Op::Ping, 0, id, 0).encode());
    }
    stream.write_all(&batch).expect("one write, three frames");

    let mut answered = Vec::new();
    for _ in 0..3 {
        let (header, _) = protocol::read_frame(&mut stream, MAX_BODY_LEN)
            .expect("read")
            .expect("decode");
        assert_eq!(header.status, Status::Ok);
        answered.push(header.request_id);
    }
    answered.sort_unstable();
    assert_eq!(
        answered,
        [3, 7, 7],
        "every submitted id answered exactly once"
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn every_header_byte_position_survives_exhaustive_single_byte_corruption() {
    // Exhaustive (not sampled): every header byte set to every value must
    // decode to Ok or a typed error — never a panic, never an allocation
    // blow-up.  This nails the magic/version/op/status/reserved/length
    // boundaries deterministically.
    let frame = valid_compress_frame(0, 4);
    for at in 0..HEADER_LEN {
        for value in 0..=255u8 {
            let mut corrupt = frame.clone();
            corrupt[at] = value;
            let _ = decode_frame(&corrupt);
        }
    }
}
