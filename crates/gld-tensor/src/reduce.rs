//! Reductions: full-tensor and per-axis sums, means, extrema and variances.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements (accumulated in `f64` for stability).
    pub fn sum(&self) -> f32 {
        self.data().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        (self.data().iter().map(|&x| x as f64).sum::<f64>() / self.numel() as f64) as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        let n = self.numel();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean() as f64;
        (self
            .data()
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64) as f32
    }

    /// Index of the maximum element in the flat data.
    pub fn argmax_flat(&self) -> usize {
        self.data()
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Sum along `axis`.  When `keepdim` is true the reduced axis is kept
    /// with extent 1 (useful for broadcasting back).
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        assert!(axis < self.rank(), "sum_axis axis out of range");
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let a = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        let data = self.data();
        for o in 0..outer {
            for k in 0..a {
                let base = o * a * inner + k * inner;
                let dst = o * inner;
                for i in 0..inner {
                    out[dst + i] += data[base + i];
                }
            }
        }
        let mut out_dims = dims.to_vec();
        if keepdim {
            out_dims[axis] = 1;
        } else {
            out_dims.remove(axis);
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let n = self.dim(axis) as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    /// Per-axis population variance.
    pub fn var_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        centered.square().mean_axis(axis, keepdim)
    }

    /// Maximum along `axis`.
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.fold_axis(axis, keepdim, f32::NEG_INFINITY, f32::max)
    }

    /// Minimum along `axis`.
    pub fn min_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.fold_axis(axis, keepdim, f32::INFINITY, f32::min)
    }

    fn fold_axis(
        &self,
        axis: usize,
        keepdim: bool,
        init: f32,
        f: impl Fn(f32, f32) -> f32,
    ) -> Tensor {
        assert!(axis < self.rank(), "fold_axis axis out of range");
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let a = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![init; outer * inner];
        let data = self.data();
        for o in 0..outer {
            for k in 0..a {
                let base = o * a * inner + k * inner;
                let dst = o * inner;
                for i in 0..inner {
                    out[dst + i] = f(out[dst + i], data[base + i]);
                }
            }
        }
        let mut out_dims = dims.to_vec();
        if keepdim {
            out_dims[axis] = 1;
        } else {
            out_dims.remove(axis);
        }
        Tensor::from_vec(out, &out_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.variance() - 1.25).abs() < 1e-6);
        assert_eq!(t.argmax_flat(), 3);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let rows = t.sum_axis(1, false);
        assert_eq!(rows.dims(), &[2]);
        assert_eq!(rows.data(), &[6.0, 15.0]);
        let cols = t.sum_axis(0, false);
        assert_eq!(cols.dims(), &[3]);
        assert_eq!(cols.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis_keepdim_broadcasts_back() {
        let t = Tensor::ones(&[2, 3, 4]);
        let s = t.sum_axis(1, true);
        assert_eq!(s.dims(), &[2, 1, 4]);
        let diff = t.sub(&s.scale(1.0 / 3.0));
        assert!(diff.abs().max() < 1e-6);
    }

    #[test]
    fn mean_and_var_axis() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 2.0, 4.0], &[2, 2]);
        let m = t.mean_axis(0, false);
        assert_eq!(m.data(), &[1.5, 3.5]);
        let v = t.var_axis(0, false);
        assert_eq!(v.data(), &[0.25, 0.25]);
    }

    #[test]
    fn max_min_axis() {
        let t = Tensor::from_vec(vec![1.0, 5.0, -2.0, 3.0, 0.0, 4.0], &[2, 3]);
        assert_eq!(t.max_axis(1, false).data(), &[5.0, 4.0]);
        assert_eq!(t.min_axis(1, false).data(), &[-2.0, 0.0]);
        assert_eq!(t.max_axis(0, false).data(), &[3.0, 5.0, 4.0]);
    }

    #[test]
    fn middle_axis_reduction_matches_manual() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = t.sum_axis(1, false);
        assert_eq!(s.dims(), &[2, 4]);
        // Manual check of one entry: sum over axis-1 at [0, :, 2].
        let expected: f32 = t.at(&[0, 0, 2]) + t.at(&[0, 1, 2]) + t.at(&[0, 2, 2]);
        assert_eq!(s.at(&[0, 2]), expected);
    }
}
