//! Seeded random tensor generation.
//!
//! All stochastic components of the stack (weight initialisation, diffusion
//! noise, uniform quantisation noise, synthetic datasets) draw from a
//! [`TensorRng`] so that every experiment is reproducible from a single seed.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random number source producing tensors.
#[derive(Clone, Debug)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to hand sub-seeds to
    /// parallel workers deterministically.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::new(self.rng.gen::<u64>())
    }

    /// A single standard-normal sample (Box–Muller).
    pub fn sample_normal(&mut self) -> f32 {
        // Box–Muller transform from two uniforms in (0, 1].
        let u1: f32 = 1.0 - self.rng.gen::<f32>();
        let u2: f32 = self.rng.gen::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// A single uniform sample in `[lo, hi)`.
    pub fn sample_uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen::<f32>() * (hi - lo) + lo
    }

    /// A uniform integer in `[0, n)`.
    pub fn sample_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "sample_index requires n > 0");
        self.rng.gen_range(0..n)
    }

    /// Standard-normal tensor of the given shape.
    pub fn randn(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.sample_normal()).collect();
        Tensor::from_vec(data, dims)
    }

    /// Normal tensor with the given mean and standard deviation.
    pub fn randn_scaled(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.sample_normal() * std + mean).collect();
        Tensor::from_vec(data, dims)
    }

    /// Uniform tensor in `[lo, hi)`.
    pub fn rand_uniform(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.sample_uniform(lo, hi)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Kaiming/He-style initialisation for a layer with `fan_in` inputs,
    /// the default for all convolution and linear weights in `gld-nn`.
    pub fn kaiming(&mut self, dims: &[usize], fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "kaiming fan_in must be positive");
        let std = (2.0 / fan_in as f32).sqrt();
        self.randn_scaled(dims, 0.0, std)
    }

    /// Random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            p.swap(i, j);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = TensorRng::new(42);
        let mut b = TensorRng::new(42);
        assert_eq!(a.randn(&[16]), b.randn(&[16]));
        assert_eq!(
            a.rand_uniform(&[8], -1.0, 1.0),
            b.rand_uniform(&[8], -1.0, 1.0)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::new(1);
        let mut b = TensorRng::new(2);
        assert_ne!(a.randn(&[16]), b.randn(&[16]));
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = TensorRng::new(7);
        let t = rng.randn(&[20_000]);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        assert!(
            (t.variance() - 1.0).abs() < 0.1,
            "variance {}",
            t.variance()
        );
    }

    #[test]
    fn uniform_range_respected() {
        let mut rng = TensorRng::new(3);
        let t = rng.rand_uniform(&[10_000], -0.5, 0.5);
        assert!(t.min() >= -0.5);
        assert!(t.max() < 0.5);
        assert!(t.mean().abs() < 0.05);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = TensorRng::new(11);
        let big_fan = rng.kaiming(&[10_000], 1000);
        let small_fan = rng.kaiming(&[10_000], 10);
        assert!(big_fan.variance() < small_fan.variance());
        assert!((big_fan.variance() - 2.0 / 1000.0).abs() < 1e-3);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = TensorRng::new(5);
        let p = rng.permutation(100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = TensorRng::new(9);
        let mut child1 = parent.fork();
        let mut child2 = parent.fork();
        assert_ne!(child1.randn(&[8]), child2.randn(&[8]));
    }

    #[test]
    fn sample_index_in_range() {
        let mut rng = TensorRng::new(13);
        for _ in 0..1000 {
            assert!(rng.sample_index(7) < 7);
        }
    }
}
