//! Failpoint-driven fault injection against the container codec paths.
//!
//! The failpoint registry is process-global, so this file is its own test
//! binary — `fail::configure` here cannot leak into the other integration
//! suites — and within the binary every test serialises through one gate.

use gld_core::{CodecId, Container, ContainerError};
use std::sync::Mutex;

/// Serialises failpoint configurations across this binary's tests and
/// guarantees the registry is disarmed again afterwards.
fn with_failpoints<R>(spec: &str, f: impl FnOnce() -> R) -> R {
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    fail::configure(spec).expect("failpoint spec parses");
    let result = f();
    fail::configure("").expect("disarm");
    result
}

/// Three compressible frames: all of them take the `gld-lz` stage, so both
/// the frame-encode and the de-stage failpoints have something to hit.
fn staged_sample() -> Container {
    let mut c = Container::new(CodecId::ZfpLike);
    for i in 0..3u8 {
        c.push(vec![i; 200]);
    }
    c
}

#[test]
fn injected_frame_bit_rot_fails_decode_and_salvages_cleanly() {
    let container = staged_sample();
    let clean = container.encode();

    // `container.frame=corrupt` flips one pre-CRC payload byte of the first
    // frame encoded after its checksum is computed — stored bit-rot.
    let hits_before = fail::total_hits();
    let damaged = with_failpoints("container.frame=corrupt:1", || container.encode());
    assert!(fail::total_hits() > hits_before, "the failpoint fired");
    assert_ne!(damaged, clean, "the encoding carries the injected damage");

    // The strict decode refuses the whole stream at the damaged frame...
    match Container::decode(&damaged) {
        Err(ContainerError::ChecksumMismatch { block: 0, .. }) => {}
        other => panic!("expected a frame-0 checksum mismatch, got {other:?}"),
    }

    // ...while salvage recovers everything else bit-identically.
    let salvage = Container::decode_salvage(&damaged).expect("header is intact");
    let lost: Vec<usize> = salvage.report.lost.iter().map(|l| l.block).collect();
    assert_eq!(lost, vec![0], "exactly the bit-rotted frame is lost");
    assert_eq!(salvage.recovered_indices(), vec![1, 2]);
    for index in [1usize, 2] {
        assert_eq!(
            salvage.frames[index].as_ref().expect("recovered"),
            &container.blocks()[index],
            "recovered frame {index} must be bit-identical"
        );
    }
}

#[test]
fn injected_destage_fault_surfaces_as_a_typed_container_error() {
    let bytes = staged_sample().encode();

    // Armed, the de-stage path reports the frame unreadable...
    let error = with_failpoints("container.destage=corrupt:1", || {
        Container::decode(&bytes).expect_err("injected de-stage fault")
    });
    match error {
        ContainerError::Corrupt(reason) => assert!(
            reason.contains("injected"),
            "the injected fault is labelled as such: {reason}"
        ),
        other => panic!("expected a Corrupt de-stage error, got {other:?}"),
    }

    // ...and disarmed, the very same bytes decode fine: the fault was in
    // the harness, not the data.
    let back = Container::decode(&bytes).expect("decodes once disarmed");
    assert_eq!(back.blocks(), staged_sample().blocks());
}

#[test]
fn probability_zero_failpoints_never_fire() {
    let container = staged_sample();
    let clean = container.encode();
    let encoded = with_failpoints("container.frame=corrupt:0%", || container.encode());
    assert_eq!(encoded, clean, "a 0% failpoint must be a no-op");
    assert!(Container::decode(&encoded).is_ok());
}
