//! Minimal offline shim over the Linux `epoll` readiness API.
//!
//! The workspace builds fully offline, so instead of pulling `mio`/`polling`
//! from crates.io this crate binds the four syscalls the service front end
//! actually needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`)
//! directly against the C library that `std` already links.  The surface is
//! deliberately tiny and *safe*: `gld-service` stays `#![forbid(unsafe_code)]`
//! and every `unsafe` block in the workspace's I/O path lives here, each with
//! a documented invariant.
//!
//! Model:
//!
//! * [`Poller`] owns one epoll instance.  File descriptors are registered
//!   with a caller-chosen `u64` token and an [`Interest`] (readable and/or
//!   writable); hangup and error conditions are always reported.
//! * Registration is **level-triggered** — a fd stays ready until the caller
//!   drains it, so a connection state machine that stops reading (e.g. for
//!   backpressure) must also drop its read interest via [`Poller::modify`]
//!   or every subsequent `wait` spins.
//! * [`Waker`] wraps an `eventfd` registered in the poller like any other
//!   fd: any thread may call [`Waker::notify`] to make a blocked
//!   [`Poller::wait`] return, and the owning loop calls [`Waker::drain`]
//!   once woken.
//!
//! Like the real `epoll`/`mio` unix backends, this crate is Linux-only.

#![warn(missing_docs)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Wire layout of `struct epoll_event`.  On x86-64 the kernel ABI packs the
/// struct (no padding between `events` and `data`); other architectures use
/// natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

mod sys {
    use super::EpollEvent;

    // Bindings against the libc that `std` links.  Signatures mirror the
    // Linux man pages; every call site documents why its arguments uphold
    // the kernel's contract.
    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Which readiness conditions a registration subscribes to.  Error and
/// hangup are always reported regardless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but not currently interested in read or write readiness
    /// (error/hangup still delivered) — used to park a backpressured fd.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Fd is readable (includes a half-closed peer: read will return 0).
    pub readable: bool,
    /// Fd is writable.
    pub writable: bool,
    /// An error condition is pending on the fd (e.g. `ECONNRESET`).
    pub error: bool,
    /// The peer hung up (full or read-half close).
    pub hangup: bool,
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error, otherwise we own the returned fd until Drop closes it.
        let epfd = unsafe { sys::epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, properly laid out epoll_event for the
        // duration of the call; the kernel copies it before returning.  For
        // EPOLL_CTL_DEL the kernel ignores the pointer (we still pass a
        // valid one for pre-2.6.9 portability, as the man page advises).
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with `token` and `interest`.  The caller must keep the
    /// fd open while registered and [`delete`](Poller::delete) it before
    /// (or at) close.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Change the interest set (and token) of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Remove `fd` from the poller.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready or `timeout` elapses,
    /// appending up to `events.capacity()` notifications into `events`
    /// (which is cleared first).  `None` blocks indefinitely.  A signal
    /// interruption returns `Ok` with no events, like a timeout.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let cap = events.capacity().clamp(1, 1024);
        let mut raw = vec![EpollEvent { events: 0, data: 0 }; cap];
        let timeout_ms = match timeout {
            // Round up so a 100µs request does not busy-spin as 0ms.
            Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
            None => -1,
        };
        // SAFETY: `raw` is a live buffer of `cap` epoll_events; the kernel
        // writes at most `cap` entries and returns how many.
        let n = unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), cap as i32, timeout_ms) };
        if n < 0 {
            let err = last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let token = ev.data;
            events.push(Event {
                token,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & EPOLLERR != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own epfd (created in `new`, never duplicated) and this
        // is the only close.
        unsafe { sys::close(self.epfd) };
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`], backed by an
/// `eventfd` registered in the poller with a caller-chosen token.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Create an eventfd and register it (readable) in `poller` with
    /// `token`.  When [`notify`](Waker::notify) is called, `wait` reports a
    /// readable event for that token; the loop must then call
    /// [`drain`](Waker::drain).
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; a negative return is an error,
        // otherwise we own the fd until Drop closes it.
        let fd = unsafe { sys::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_os_error());
        }
        let waker = Waker { fd };
        poller.add(fd, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Wake the poller.  Safe to call from any thread, any number of times;
    /// notifications coalesce.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        let buf = one.to_ne_bytes();
        // SAFETY: `buf` is 8 live bytes, the length eventfd requires.
        let rc = unsafe { sys::write(self.fd, buf.as_ptr(), buf.len()) };
        if rc < 0 {
            let err = last_os_error();
            // The counter is saturated — a wakeup is already pending.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Clear pending notifications.  Called by the poller's owning loop
    /// after `wait` reports this waker's token readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 live bytes; the eventfd read either writes all
        // 8 or fails.  EAGAIN (already drained) is the expected exit.
        unsafe { sys::read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own fd (created in `new`, never duplicated) and this is
        // the only close.  The poller registration dies with the fd.
        unsafe { sys::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 1).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.notify().unwrap();
        });
        let mut events = Vec::with_capacity(8);
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "waker did not fire"
        );
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        waker.drain();
        handle.join().unwrap();
        // Drained: a short wait now times out with no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 1));
    }

    #[test]
    fn level_triggered_socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: without draining, readiness fires again.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Dropping read interest parks the fd even though data is pending.
        poller
            .modify(server.as_raw_fd(), 7, Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        // Restore interest, drain, and observe peer hangup.
        poller
            .modify(server.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();
        let mut buf = [0u8; 16];
        let mut srv = &server;
        let n = srv.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("hangup event");
        assert!(ev.hangup || ev.readable);
        poller.delete(server.as_raw_fd()).unwrap();
    }
}
