//! Stage-two training: fit the conditional latent diffusion model on latent
//! blocks produced by the frozen VAE encoder (paper §3.4, Algorithm 1), then
//! optionally fine-tune with a shorter schedule (paper §4.6).

use crate::config::DiffusionConfig;
use crate::model::{ConditionalDiffusion, FramePartition};
use gld_nn::prelude::*;
use gld_tensor::{Tensor, TensorRng};

/// Summary of one training phase.
#[derive(Clone, Debug)]
pub struct DiffusionTrainReport {
    /// Mean loss over the first quarter of the steps.
    pub early_loss: f32,
    /// Mean loss over the last quarter of the steps.
    pub late_loss: f32,
    /// Number of optimisation steps performed in this phase.
    pub steps: usize,
    /// Schedule length used in this phase.
    pub schedule_steps: usize,
}

/// Trainer owning the diffusion model and its optimiser state.
pub struct DiffusionTrainer {
    model: ConditionalDiffusion,
    optimizer: Adam,
    rng: TensorRng,
}

impl DiffusionTrainer {
    /// Creates a trainer for a fresh model.
    pub fn new(config: DiffusionConfig) -> Self {
        let model = ConditionalDiffusion::new(config);
        let optimizer = Adam::new(
            model.parameters(),
            // Paper: 1e-4 constant; the scaled-down model tolerates a larger
            // constant rate, which matters for CPU-sized step budgets.
            LrSchedule::Constant(2e-3),
            AdamConfig {
                grad_clip: 1.0,
                ..AdamConfig::default()
            },
        );
        DiffusionTrainer {
            model,
            optimizer,
            rng: TensorRng::new(config.seed.wrapping_add(101)),
        }
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &ConditionalDiffusion {
        &self.model
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> ConditionalDiffusion {
        self.model
    }

    /// Runs one training phase over normalised latent blocks
    /// (`[N, C, h, w]`, values in `[-1, 1]`), sampling a random block and a
    /// random timestep per step.
    pub fn train(
        &mut self,
        blocks: &[Tensor],
        partition: &FramePartition,
        steps: usize,
    ) -> DiffusionTrainReport {
        assert!(!blocks.is_empty(), "no training blocks provided");
        let mut losses = Vec::with_capacity(steps);
        for _ in 0..steps {
            let block = &blocks[self.rng.sample_index(blocks.len())];
            let tape = Tape::new();
            let loss = self
                .model
                .training_loss(&tape, block, partition, &mut self.rng);
            losses.push(loss.value().item());
            loss.backward();
            self.optimizer.step();
        }
        let quarter = (steps / 4).max(1);
        let early_loss = losses[..quarter].iter().sum::<f32>() / quarter as f32;
        let late_loss = losses[steps - quarter..].iter().sum::<f32>() / quarter as f32;
        DiffusionTrainReport {
            early_loss,
            late_loss,
            steps,
            schedule_steps: self.model.schedule().steps(),
        }
    }

    /// Switches the model to a shorter schedule and continues training —
    /// the paper's few-step fine-tuning stage.
    pub fn fine_tune(
        &mut self,
        blocks: &[Tensor],
        partition: &FramePartition,
        schedule_steps: usize,
        steps: usize,
    ) -> DiffusionTrainReport {
        self.model.retime(schedule_steps);
        self.train(blocks, partition, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds latent blocks with a simple, learnable temporal structure:
    /// each frame is a linear interpolation between two random endpoint
    /// frames, so an interpolating denoiser can do well quickly.
    fn interpolating_blocks(count: usize, frames: usize, rng: &mut TensorRng) -> Vec<Tensor> {
        (0..count)
            .map(|_| {
                let a = rng.rand_uniform(&[1, 3, 4, 4], -0.8, 0.8);
                let b = rng.rand_uniform(&[1, 3, 4, 4], -0.8, 0.8);
                let mut frames_vec = Vec::with_capacity(frames);
                for t in 0..frames {
                    let alpha = t as f32 / (frames as f32 - 1.0);
                    frames_vec.push(a.scale(1.0 - alpha).add(&b.scale(alpha)));
                }
                let refs: Vec<&Tensor> = frames_vec.iter().collect();
                Tensor::concat(&refs, 0)
            })
            .collect()
    }

    #[test]
    fn training_reduces_the_denoising_loss() {
        let mut rng = TensorRng::new(5);
        let blocks = interpolating_blocks(6, 8, &mut rng);
        let partition = FramePartition::from_conditioning(8, &[0, 4, 7]);
        let mut trainer = DiffusionTrainer::new(DiffusionConfig::tiny());
        let report = trainer.train(&blocks, &partition, 80);
        assert!(
            report.late_loss < report.early_loss,
            "diffusion loss did not decrease: {} -> {}",
            report.early_loss,
            report.late_loss
        );
    }

    #[test]
    fn trained_model_denoises_held_out_blocks_better_than_untrained() {
        // At this model scale (tiny UNet, 4×4 latents, a few hundred steps)
        // end-to-end *generation* error on random-endpoint blocks is noise
        // dominated, so the robust learnable property is the training
        // objective itself generalising: the trained denoiser must predict
        // held-out noise better than a random-init one under an identical
        // evaluation stream.  Full generation quality is covered by the
        // pipeline-level reconstruction-bound tests in `tests/`.
        let mut rng = TensorRng::new(6);
        let blocks = interpolating_blocks(8, 8, &mut rng);
        let partition = FramePartition::from_conditioning(8, &[0, 4, 7]);

        let eval = |model: &ConditionalDiffusion| -> f32 {
            let mut eval_rng = TensorRng::new(77);
            let test_blocks = interpolating_blocks(4, 8, &mut eval_rng);
            let mut err = 0.0;
            for block in &test_blocks {
                for _ in 0..8 {
                    let tape = Tape::new();
                    err += model
                        .training_loss(&tape, block, &partition, &mut eval_rng)
                        .value()
                        .item();
                }
            }
            err
        };

        let untrained = ConditionalDiffusion::new(DiffusionConfig::tiny());
        let err_untrained = eval(&untrained);

        let mut trainer = DiffusionTrainer::new(DiffusionConfig::tiny());
        trainer.train(&blocks, &partition, 220);
        let trained = trainer.into_model();
        let err_trained = eval(&trained);

        assert!(
            err_trained < err_untrained,
            "training did not improve held-out denoising: {err_trained} vs {err_untrained}"
        );
    }

    #[test]
    fn fine_tuning_with_fewer_steps_keeps_working() {
        let mut rng = TensorRng::new(7);
        let blocks = interpolating_blocks(4, 8, &mut rng);
        let partition = FramePartition::from_conditioning(8, &[0, 7]);
        let mut trainer = DiffusionTrainer::new(DiffusionConfig::tiny());
        trainer.train(&blocks, &partition, 40);
        let report = trainer.fine_tune(&blocks, &partition, 8, 40);
        assert_eq!(report.schedule_steps, 8);
        assert!(report.late_loss.is_finite());
        // Sampling with the short schedule still produces finite output.
        let model = trainer.into_model();
        let out = model.generate(&blocks[0], &partition, 8, &mut rng);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
