//! Symbol models layered on the entropy coders.
//!
//! * [`GaussianConditionalModel`] codes quantised latents `y` whose per
//!   element mean and scale are predicted by the hyperprior (paper Eq. 1–2).
//! * [`HistogramModel`] codes hyper-latents `z` with a data-built factorised
//!   histogram prior that is serialised into the stream header — the
//!   practical stand-in for the paper's non-parametric density model [4].
//!   Decoding resolves symbols through a precomputed slot→bin lookup table
//!   instead of a per-symbol binary search.
//! * [`BypassCoder`] writes raw integers for escape paths.
//! * [`BitCounter`] accumulates theoretical code lengths for rate accounting.
//!
//! All coding entry points are generic over
//! [`EntropyEncoder`]/[`EntropyDecoder`], so the same model drives both the
//! production range coder and the reference arithmetic coder.

use crate::arith::MAX_TOTAL;
use crate::backend::{EntropyDecoder, EntropyEncoder};
use crate::gaussian::{normal_cdf, quantized_gaussian_bits};
use std::sync::OnceLock;

/// Total frequency budget used when quantising probability models.
const MODEL_TOTAL: u32 = MAX_TOTAL / 2;

/// Upper bound on the decode lookup table length (slots).  1024 slots cover
/// a full `MODEL_TOTAL` range with a shift of 5 — small enough to stay
/// cache-resident, large enough that the forward scan after the table hit is
/// a handful of steps on realistic histograms.
const LUT_SLOTS: usize = 1024;

/// Number of standard deviations covered by the explicit symbol window of the
/// Gaussian conditional model; values outside are escape-coded.
const TAIL_SIGMAS: f64 = 8.0;

/// Maximum half-width of the explicit symbol window.
const MAX_HALF_WIDTH: i64 = 255;

// ----------------------------------------------------------------------
// Bypass coding of raw integers
// ----------------------------------------------------------------------

/// Raw (model-free) integer coding used for escape values.
pub struct BypassCoder;

impl BypassCoder {
    /// Encodes a signed 32-bit integer with a zig-zag mapping.
    pub fn encode_i32<E: EntropyEncoder>(enc: &mut E, value: i32) {
        let zigzag = ((value << 1) ^ (value >> 31)) as u32;
        enc.encode_bits_raw(zigzag as u64, 32);
    }

    /// Decodes a signed 32-bit integer written by
    /// [`BypassCoder::encode_i32`].
    pub fn decode_i32<D: EntropyDecoder>(dec: &mut D) -> i32 {
        let zigzag = dec.decode_bits_raw(32) as u32;
        ((zigzag >> 1) as i32) ^ -((zigzag & 1) as i32)
    }
}

// ----------------------------------------------------------------------
// Gaussian conditional model
// ----------------------------------------------------------------------

/// Entropy model for quantised latents with per-element Gaussian parameters.
///
/// For each element the model builds a quantised CDF over an integer window
/// centred at the predicted mean, plus an escape symbol for outliers; escapes
/// carry a raw 32-bit payload.  Encoding and decoding must be driven with the
/// *same* mean/scale sequences (both sides derive them from the decoded
/// hyper-latents), which makes the scheme lossless for the quantised symbols.
#[derive(Debug, Clone, Default)]
pub struct GaussianConditionalModel;

struct Window {
    lo: i64,
    freqs: Vec<u32>,
    cdf: Vec<u32>,
}

impl GaussianConditionalModel {
    /// Creates the model (stateless; provided for API symmetry).
    pub fn new() -> Self {
        GaussianConditionalModel
    }

    fn window(mean: f64, std: f64) -> Window {
        let std = std.max(1e-3);
        let centre = mean.round() as i64;
        let half = ((std * TAIL_SIGMAS).ceil() as i64).clamp(1, MAX_HALF_WIDTH);
        let lo = centre - half;
        let hi = centre + half;
        let n_bins = (hi - lo + 1) as usize + 1; // + escape
        let budget = MODEL_TOTAL - n_bins as u32;
        // Probability mass of each symbol in the window.
        let span_lo = normal_cdf(lo as f64 - 0.5, mean, std);
        let span_hi = normal_cdf(hi as f64 + 0.5, mean, std);
        let span = (span_hi - span_lo).max(1e-12);
        let mut freqs = Vec::with_capacity(n_bins);
        let mut allocated = 0u32;
        for k in lo..=hi {
            let p = (normal_cdf(k as f64 + 0.5, mean, std) - normal_cdf(k as f64 - 0.5, mean, std))
                .max(0.0)
                / span;
            let f = 1 + (p * budget as f64) as u32;
            allocated += f;
            freqs.push(f);
        }
        // Escape bin absorbs whatever is left of the budget (at least 1).
        let escape = MODEL_TOTAL - allocated - 1;
        freqs.push(escape.max(1));
        let mut cdf = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 0u32;
        cdf.push(0);
        for &f in &freqs {
            acc += f;
            cdf.push(acc);
        }
        Window { lo, freqs, cdf }
    }

    fn total(window: &Window) -> u32 {
        *window.cdf.last().unwrap()
    }

    /// Encodes `symbols[i]` under `N(means[i], scales[i]²)`.
    pub fn encode<E: EntropyEncoder>(
        &self,
        enc: &mut E,
        symbols: &[i32],
        means: &[f32],
        scales: &[f32],
    ) {
        assert_eq!(symbols.len(), means.len(), "means length mismatch");
        assert_eq!(symbols.len(), scales.len(), "scales length mismatch");
        for ((&s, &m), &sd) in symbols.iter().zip(means).zip(scales) {
            let w = Self::window(m as f64, sd as f64);
            let total = Self::total(&w);
            let idx = s as i64 - w.lo;
            let escape_idx = w.freqs.len() - 1;
            if idx >= 0 && (idx as usize) < escape_idx {
                let idx = idx as usize;
                enc.encode(w.cdf[idx], w.cdf[idx + 1], total);
            } else {
                enc.encode(w.cdf[escape_idx], w.cdf[escape_idx + 1], total);
                BypassCoder::encode_i32(enc, s);
            }
        }
    }

    /// Decodes a symbol sequence; `means`/`scales` must match encoding.
    pub fn decode<D: EntropyDecoder>(
        &self,
        dec: &mut D,
        means: &[f32],
        scales: &[f32],
    ) -> Vec<i32> {
        assert_eq!(means.len(), scales.len(), "scales length mismatch");
        let mut out = Vec::with_capacity(means.len());
        for (&m, &sd) in means.iter().zip(scales) {
            let w = Self::window(m as f64, sd as f64);
            let total = Self::total(&w);
            let target = dec.decode_target(total);
            let bin = w.cdf.partition_point(|&c| c <= target) - 1;
            dec.decode_update(w.cdf[bin], w.cdf[bin + 1], total);
            let escape_idx = w.freqs.len() - 1;
            if bin == escape_idx {
                out.push(BypassCoder::decode_i32(dec));
            } else {
                out.push((w.lo + bin as i64) as i32);
            }
        }
        out
    }

    /// Theoretical number of bits for the symbol stream (without actually
    /// coding it); useful for fast rate estimates.
    pub fn estimate_bits(&self, symbols: &[i32], means: &[f32], scales: &[f32]) -> f64 {
        symbols
            .iter()
            .zip(means)
            .zip(scales)
            .map(|((&s, &m), &sd)| {
                quantized_gaussian_bits(s as i64, m as f64, (sd as f64).max(1e-3))
            })
            .sum()
    }
}

// ----------------------------------------------------------------------
// Histogram (factorized prior) model
// ----------------------------------------------------------------------

/// A static histogram model built from the data itself and shipped in the
/// stream header — the factorized prior for hyper-latents `z`.
///
/// Alongside the cumulative-frequency table used for encoding, the model
/// precomputes a slot→bin lookup table so the decode-side symbol search is a
/// table hit plus a short forward scan instead of a binary search per
/// symbol.
#[derive(Debug, Clone)]
pub struct HistogramModel {
    min: i32,
    freqs: Vec<u32>,
    cdf: Vec<u32>,
    /// Decode-side lookup table, built lazily on the first
    /// [`HistogramModel::decode_symbol`] call so the compress path (which
    /// only encodes) never pays for it.
    lut: OnceLock<DecodeLut>,
}

/// Typed failure of [`HistogramModel::try_from_bytes`] on untrusted input
/// (profile tables, corrupted containers).  Every variant is a parse-time
/// rejection — the hardened path never panics and never allocates more than
/// the model budget allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelDecodeError {
    /// The serialised header or its entry list ends early.
    Truncated,
    /// The declared bin count exceeds what a fitted model can produce, so
    /// the allocation it implies is rejected before being made.
    OversizedBins {
        /// Declared number of bins.
        bins: usize,
        /// Largest bin count a fitted model can carry.
        max: usize,
    },
    /// A non-zero entry points outside the declared bin range.
    BadOffset {
        /// The offending bin offset.
        offset: usize,
        /// Number of declared bins.
        bins: usize,
    },
    /// The frequencies sum to zero or overflow the coder's budget.
    BadTotal,
}

impl std::fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelDecodeError::Truncated => write!(f, "truncated histogram model"),
            ModelDecodeError::OversizedBins { bins, max } => {
                write!(f, "histogram model declares {bins} bins (max {max})")
            }
            ModelDecodeError::BadOffset { offset, bins } => {
                write!(f, "histogram entry offset {offset} outside {bins} bins")
            }
            ModelDecodeError::BadTotal => {
                write!(
                    f,
                    "histogram frequencies sum to zero or overflow the coder budget"
                )
            }
        }
    }
}

impl std::error::Error for ModelDecodeError {}

/// `slots[target >> shift]` is the index of the first bin whose cumulative
/// interval can contain `target`; the true bin is found by scanning forward
/// from there (never backward).  The scan runs on the kernel backend that
/// was active when the table was built — all backends are bit-identical,
/// so the choice only affects throughput.
#[derive(Debug, Clone)]
struct DecodeLut {
    slots: Vec<u16>,
    shift: u32,
    backend: gld_kernels::Backend,
}

/// Model identity is its fitted distribution; the lazily built decode table
/// is derived state and deliberately excluded.
impl PartialEq for HistogramModel {
    fn eq(&self, other: &Self) -> bool {
        self.min == other.min && self.freqs == other.freqs
    }
}

impl Eq for HistogramModel {}

impl HistogramModel {
    /// Builds a histogram over the symbol range present in `symbols`.  Only
    /// observed symbols receive probability mass (the model is always fitted
    /// on exactly the stream it will encode), which keeps the serialised
    /// header proportional to the number of *distinct* symbols rather than
    /// the symbol range.  An empty slice yields a degenerate single-bin
    /// model.
    pub fn fit(symbols: &[i32]) -> Self {
        if symbols.is_empty() {
            return Self::from_freqs(0, vec![1]);
        }
        let min = *symbols.iter().min().unwrap();
        let max = *symbols.iter().max().unwrap();
        let bins = (max - min + 1) as usize;
        assert!(
            bins <= (MODEL_TOTAL / 2) as usize,
            "symbol range {bins} too wide for a histogram model"
        );
        let mut counts = vec![0u64; bins];
        for &s in symbols {
            counts[(s - min) as usize] += 1;
        }
        Self::from_counts(min, counts)
    }

    /// Pools several fitted models into one histogram over the union of
    /// their symbol ranges, summing per-bin frequency mass.  Each input is
    /// already normalised to the same coding budget, so every model
    /// contributes equal weight — the cross-frame shared model of container
    /// v4 is built this way from a sample of a variable's windows.  Returns
    /// `None` for an empty input.
    pub fn merged<'a, I>(models: I) -> Option<HistogramModel>
    where
        I: IntoIterator<Item = &'a HistogramModel>,
    {
        let models: Vec<&HistogramModel> = models.into_iter().collect();
        let min = models.iter().map(|m| m.min).min()?;
        let max = models.iter().map(|m| m.max_symbol()).max()?;
        let bins = (max - min + 1) as usize;
        assert!(
            bins <= (MODEL_TOTAL / 2) as usize,
            "merged symbol range {bins} too wide for a histogram model"
        );
        let mut counts = vec![0u64; bins];
        for m in models {
            for (i, &f) in m.freqs.iter().enumerate() {
                counts[(m.min - min) as usize + i] += f as u64;
            }
        }
        Some(Self::from_counts(min, counts))
    }

    /// Rescales raw per-bin counts to the fixed coding budget and builds the
    /// model: observed bins keep ≥ 1, unobserved bins stay exactly 0.
    fn from_counts(min: i32, counts: Vec<u64>) -> Self {
        let total_count: u64 = counts.iter().sum();
        // Rescale observed bins to the fixed coding budget, keeping every
        // observed bin ≥ 1 and unobserved bins at exactly 0.
        let budget = MODEL_TOTAL as u64;
        let mut freqs: Vec<u32> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    0
                } else {
                    (((c * budget) / total_count) as u32).max(1)
                }
            })
            .collect();
        // Fix the total exactly to MODEL_TOTAL by trimming/boosting the
        // largest bins while keeping observed bins ≥ 1.
        let mut sum: u32 = freqs.iter().sum();
        if sum < MODEL_TOTAL {
            let largest = freqs
                .iter()
                .enumerate()
                .max_by_key(|(_, &f)| f)
                .map(|(i, _)| i)
                .unwrap();
            freqs[largest] += MODEL_TOTAL - sum;
        } else {
            while sum > MODEL_TOTAL {
                let largest = freqs
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &f)| f)
                    .map(|(i, _)| i)
                    .unwrap();
                let take = (sum - MODEL_TOTAL).min(freqs[largest].saturating_sub(1));
                assert!(take > 0, "histogram rescale could not converge");
                freqs[largest] -= take;
                sum -= take;
            }
        }
        Self::from_freqs(min, freqs)
    }

    fn from_freqs(min: i32, freqs: Vec<u32>) -> Self {
        let mut cdf = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 0u32;
        cdf.push(0);
        for &f in &freqs {
            acc += f;
            cdf.push(acc);
        }
        HistogramModel {
            min,
            freqs,
            cdf,
            lut: OnceLock::new(),
        }
    }

    /// Builds the slot→bin decode table: slot `s` starts at target
    /// `s << shift` and maps to the bin containing that target.  A
    /// degenerate total of zero (possible only for a corrupt serialised
    /// model) or an oversized bin table yields an empty LUT; decoding then
    /// falls back to the binary-search path.
    fn build_lut(cdf: &[u32], bins: usize) -> DecodeLut {
        let total = *cdf.last().unwrap();
        let mut shift = 0u32;
        let mut slots = Vec::new();
        if total > 0 && bins <= usize::from(u16::MAX) {
            while (((total - 1) >> shift) as usize) + 1 > LUT_SLOTS {
                shift += 1;
            }
            let n_slots = (((total - 1) >> shift) as usize) + 1;
            slots.reserve_exact(n_slots);
            let mut bin = 0usize;
            for s in 0..n_slots {
                let target = (s as u32) << shift;
                while cdf[bin + 1] <= target {
                    bin += 1;
                }
                slots.push(bin as u16);
            }
        }
        DecodeLut {
            slots,
            shift,
            backend: gld_kernels::active(),
        }
    }

    /// Lowest representable symbol.
    pub fn min_symbol(&self) -> i32 {
        self.min
    }

    /// Highest representable symbol.
    pub fn max_symbol(&self) -> i32 {
        self.min + self.freqs.len() as i32 - 1
    }

    fn total(&self) -> u32 {
        *self.cdf.last().unwrap()
    }

    /// Serialises the model (to be stored in the compressed header).  The
    /// encoding is sparse — only bins with non-zero frequency are written —
    /// so the header cost scales with the number of distinct symbols.
    pub fn to_bytes(&self) -> Vec<u8> {
        let nonzero: Vec<(u32, u32)> = self
            .freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, &f)| (i as u32, f))
            .collect();
        let mut out = Vec::with_capacity(12 + nonzero.len() * 8);
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&(self.freqs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(nonzero.len() as u32).to_le_bytes());
        for (offset, freq) in nonzero {
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&freq.to_le_bytes());
        }
        out
    }

    /// Deserialises a model written by [`HistogramModel::to_bytes`].
    /// Returns the model and the number of bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> (Self, usize) {
        assert!(bytes.len() >= 12, "truncated histogram header");
        let min = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let nonzero = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let mut freqs = vec![0u32; len];
        let mut off = 12;
        for _ in 0..nonzero {
            let idx = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let f = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            freqs[idx] = f;
            off += 8;
        }
        (Self::from_freqs(min, freqs), off)
    }

    /// Hardened deserialiser for **untrusted** bytes (profile tables inside
    /// containers arriving over the wire).  Unlike
    /// [`HistogramModel::from_bytes`] — which trusts its caller and panics
    /// on malformed input — this path bounds-checks every read, rejects bin
    /// counts larger than a fitted model can produce *before* allocating,
    /// and verifies the frequency total is usable by the coder.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<(Self, usize), ModelDecodeError> {
        if bytes.len() < 12 {
            return Err(ModelDecodeError::Truncated);
        }
        let min = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let nonzero = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let max_bins = (MODEL_TOTAL / 2) as usize;
        if len == 0 || len > max_bins {
            return Err(ModelDecodeError::OversizedBins {
                bins: len,
                max: max_bins,
            });
        }
        let need = nonzero
            .checked_mul(8)
            .and_then(|n| n.checked_add(12))
            .ok_or(ModelDecodeError::Truncated)?;
        if bytes.len() < need {
            return Err(ModelDecodeError::Truncated);
        }
        let mut freqs = vec![0u32; len];
        let mut off = 12;
        for _ in 0..nonzero {
            let idx = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let f = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            if idx >= len {
                return Err(ModelDecodeError::BadOffset {
                    offset: idx,
                    bins: len,
                });
            }
            freqs[idx] = f;
            off += 8;
        }
        // Duplicate offsets overwrite, so sum what the model actually holds.
        let total: u64 = freqs.iter().map(|&f| u64::from(f)).sum();
        if total == 0 || total > u64::from(MAX_TOTAL) {
            return Err(ModelDecodeError::BadTotal);
        }
        Ok((Self::from_freqs(min, freqs), off))
    }

    /// Whether `s` can be coded under this model (inside the fitted range
    /// and carrying non-zero probability mass).  Shared-profile encoders use
    /// this to decide between the profile model and a per-frame refit.
    pub fn can_encode(&self, s: i32) -> bool {
        s >= self.min_symbol() && s <= self.max_symbol() && self.freqs[(s - self.min) as usize] > 0
    }

    /// Returns a copy of this model extended with one **overflow bin** just
    /// below its range (the new [`HistogramModel::min_symbol`]).  Shared
    /// entropy profiles are built through this: a frame coded against the
    /// profile writes the overflow symbol plus the raw value for any code
    /// the fitted range cannot represent, so a profile fitted on one window
    /// stays usable on later windows whose tails reach further.  The bin
    /// receives a small fixed slice of the coding budget, taken from the
    /// largest existing bins so the total stays unchanged (a degenerate
    /// model whose bins cannot give up mass grows the total instead, which
    /// the coder accepts).
    pub fn with_escape(&self) -> HistogramModel {
        let total = self.total();
        let escape = (total / 64).max(1);
        let mut freqs = Vec::with_capacity(self.freqs.len() + 1);
        freqs.push(escape);
        freqs.extend_from_slice(&self.freqs);
        let mut sum = total + escape;
        while sum > total {
            let largest = freqs
                .iter()
                .enumerate()
                .skip(1)
                .max_by_key(|(_, &f)| f)
                .map(|(i, _)| i)
                .unwrap();
            let take = (sum - total).min(freqs[largest].saturating_sub(1));
            if take == 0 {
                break;
            }
            freqs[largest] -= take;
            sum -= take;
        }
        Self::from_freqs(self.min - 1, freqs)
    }

    /// Theoretical bits to code one symbol under this model.  Cheap enough
    /// for the per-frame shared-vs-embedded cost decision to call per code.
    #[inline]
    pub fn symbol_bits(&self, s: i32) -> f64 {
        let p = self.freqs[(s - self.min) as usize] as f64 / self.total() as f64;
        -p.log2()
    }

    /// Builds the decode lookup table now (idempotent).  Shared-profile
    /// decoders call this once when a profile is installed, so every frame
    /// referencing the profile decodes against an already-built table —
    /// cloning the model clones the warm table with it.
    pub fn prepare_decode(&self) {
        let _ = self
            .lut
            .get_or_init(|| Self::build_lut(&self.cdf, self.freqs.len()));
    }

    /// Size of the serialised header in bytes.
    pub fn header_bytes(&self) -> usize {
        12 + self.freqs.iter().filter(|&&f| f > 0).count() * 8
    }

    /// Encodes one symbol.  It must lie in the fitted range.
    #[inline]
    pub fn encode_symbol<E: EntropyEncoder>(&self, enc: &mut E, s: i32) {
        assert!(
            s >= self.min_symbol() && s <= self.max_symbol(),
            "symbol {s} outside histogram range [{}, {}]",
            self.min_symbol(),
            self.max_symbol()
        );
        let idx = (s - self.min) as usize;
        enc.encode(self.cdf[idx], self.cdf[idx + 1], self.total());
    }

    /// Encodes a symbol sequence.  Every symbol must lie in the fitted range.
    pub fn encode<E: EntropyEncoder>(&self, enc: &mut E, symbols: &[i32]) {
        for &s in symbols {
            self.encode_symbol(enc, s);
        }
    }

    /// Decodes one symbol, resolving the bin through the precomputed
    /// slot→bin table plus a forward scan.
    #[inline]
    pub fn decode_symbol<D: EntropyDecoder>(&self, dec: &mut D) -> i32 {
        let lut = self
            .lut
            .get_or_init(|| Self::build_lut(&self.cdf, self.freqs.len()));
        if lut.slots.is_empty() {
            // Degenerate model (deserialised with an oversized or zero-mass
            // bin table) — fall back to the search path.
            return self.decode_symbol_binary_search(dec);
        }
        let total = self.total();
        let target = dec.decode_target(total);
        let mut bin = lut.slots[(target >> lut.shift) as usize] as usize;
        if self.cdf[bin + 1] <= target {
            // Slot start fell short of the true bin: hand the forward scan
            // to the active SIMD backend (the common case — an exact slot
            // hit — never pays the indirect call).
            bin = gld_kernels::kernels_for(lut.backend).find_bin(&self.cdf, bin + 1, target);
        }
        dec.decode_update(self.cdf[bin], self.cdf[bin + 1], total);
        self.min + bin as i32
    }

    /// Reference decode path: binary search over the CDF, exactly the
    /// pre-LUT implementation.  Kept callable so the equivalence suite can
    /// prove [`HistogramModel::decode_symbol`] resolves identical bins and
    /// consumes identical stream state.
    #[doc(hidden)]
    pub fn decode_symbol_binary_search<D: EntropyDecoder>(&self, dec: &mut D) -> i32 {
        let total = self.total();
        let target = dec.decode_target(total);
        let bin = self.cdf.partition_point(|&c| c <= target) - 1;
        dec.decode_update(self.cdf[bin], self.cdf[bin + 1], total);
        self.min + bin as i32
    }

    /// Decodes `count` symbols.
    pub fn decode<D: EntropyDecoder>(&self, dec: &mut D, count: usize) -> Vec<i32> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.decode_symbol(dec));
        }
        out
    }

    /// Theoretical bits to code `symbols` under this model.
    pub fn estimate_bits(&self, symbols: &[i32]) -> f64 {
        let total = self.total() as f64;
        symbols
            .iter()
            .map(|&s| {
                let idx = (s - self.min) as usize;
                let p = self.freqs[idx] as f64 / total;
                -p.log2()
            })
            .sum()
    }
}

// ----------------------------------------------------------------------
// Bit counter
// ----------------------------------------------------------------------

/// Accumulates theoretical code lengths, used by the rate-accounting paths
/// that want sizes without running the coder.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitCounter {
    bits: f64,
}

impl BitCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        BitCounter { bits: 0.0 }
    }

    /// Adds the cost of a quantised-Gaussian symbol.
    pub fn add_gaussian(&mut self, symbol: i32, mean: f32, scale: f32) {
        self.bits += quantized_gaussian_bits(symbol as i64, mean as f64, (scale as f64).max(1e-3));
    }

    /// Adds a fixed number of raw bits.
    pub fn add_raw_bits(&mut self, bits: f64) {
        self.bits += bits;
    }

    /// Total accumulated bits.
    pub fn bits(&self) -> f64 {
        self.bits
    }

    /// Total accumulated size in bytes (rounded up).
    pub fn bytes(&self) -> usize {
        (self.bits / 8.0).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::{RangeDecoder, RangeEncoder};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gaussian_model_roundtrip_typical_latents() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let means: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let scales: Vec<f32> = (0..n).map(|_| rng.gen_range(0.2..4.0)).collect();
        let symbols: Vec<i32> = means
            .iter()
            .zip(&scales)
            .map(|(&m, &s)| (m + rng.gen_range(-3.0..3.0) * s).round() as i32)
            .collect();
        let model = GaussianConditionalModel::new();
        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols, &means, &scales);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let decoded = model.decode(&mut dec, &means, &scales);
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn gaussian_model_handles_outliers_via_escape() {
        let means = vec![0.0f32; 8];
        let scales = vec![0.5f32; 8];
        // Symbols far outside the 8-sigma window.
        let symbols = vec![0, 1, 100_000, -70_000, 2, -1, i32::MAX / 2, 0];
        let model = GaussianConditionalModel::new();
        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols, &means, &scales);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        assert_eq!(model.decode(&mut dec, &means, &scales), symbols);
    }

    #[test]
    fn gaussian_model_rate_tracks_scale() {
        // Coding symbols drawn from a narrow predicted distribution is much
        // cheaper than from a wide one.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let model = GaussianConditionalModel::new();
        let mut sizes = Vec::new();
        for &scale in &[0.6f32, 8.0f32] {
            let means = vec![0.0f32; n];
            let scales = vec![scale; n];
            let symbols: Vec<i32> = (0..n)
                .map(|_| (rng.gen_range(-2.0..2.0) * scale).round() as i32)
                .collect();
            let mut enc = RangeEncoder::new();
            model.encode(&mut enc, &symbols, &means, &scales);
            sizes.push(enc.finish().len());
        }
        assert!(
            sizes[0] * 2 < sizes[1],
            "narrow {} vs wide {} bytes",
            sizes[0],
            sizes[1]
        );
    }

    #[test]
    fn gaussian_estimate_close_to_actual_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3000;
        let means = vec![0.0f32; n];
        let scales = vec![2.0f32; n];
        let symbols: Vec<i32> = (0..n)
            .map(|_| rng.gen_range(-6.0f32..6.0).round() as i32)
            .collect();
        let model = GaussianConditionalModel::new();
        let est_bits = model.estimate_bits(&symbols, &means, &scales);
        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols, &means, &scales);
        let actual_bits = (enc.finish().len() * 8) as f64;
        let ratio = actual_bits / est_bits;
        assert!(
            ratio > 0.9 && ratio < 1.2,
            "estimate {est_bits} vs actual {actual_bits}"
        );
    }

    #[test]
    fn histogram_roundtrip_and_serialization() {
        let mut rng = StdRng::seed_from_u64(7);
        let symbols: Vec<i32> = (0..5000).map(|_| rng.gen_range(-12..13)).collect();
        let model = HistogramModel::fit(&symbols);
        let bytes = model.to_bytes();
        let (restored, used) = HistogramModel::from_bytes(&bytes);
        assert_eq!(used, bytes.len());
        assert_eq!(restored, model);

        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols);
        let stream = enc.finish();
        let mut dec = RangeDecoder::new(&stream);
        assert_eq!(restored.decode(&mut dec, symbols.len()), symbols);
    }

    #[test]
    fn histogram_skewed_data_compresses_well() {
        // 95% zeros should code far below 1 byte/symbol and close to entropy.
        let mut rng = StdRng::seed_from_u64(9);
        let symbols: Vec<i32> = (0..8000)
            .map(|_| {
                if rng.gen_bool(0.95) {
                    0
                } else {
                    rng.gen_range(-3..4)
                }
            })
            .collect();
        let model = HistogramModel::fit(&symbols);
        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols);
        let bytes = enc.finish().len();
        assert!(
            bytes * 8 < symbols.len(),
            "took {} bits for {} symbols",
            bytes * 8,
            symbols.len()
        );
        let est = model.estimate_bits(&symbols);
        assert!(((bytes * 8) as f64) < est * 1.1 + 64.0);
    }

    #[test]
    fn histogram_empty_and_constant_inputs() {
        let empty = HistogramModel::fit(&[]);
        assert_eq!(empty.min_symbol(), 0);
        let constant = HistogramModel::fit(&[42; 100]);
        assert_eq!(constant.min_symbol(), 42);
        assert_eq!(constant.max_symbol(), 42);
        let mut enc = RangeEncoder::new();
        constant.encode(&mut enc, &[42; 100]);
        let stream = enc.finish();
        let mut dec = RangeDecoder::new(&stream);
        assert_eq!(constant.decode(&mut dec, 100), vec![42; 100]);
    }

    #[test]
    fn try_from_bytes_accepts_fitted_models_and_warm_lut_clones() {
        let mut rng = StdRng::seed_from_u64(11);
        let symbols: Vec<i32> = (0..4000).map(|_| rng.gen_range(-9..10)).collect();
        let model = HistogramModel::fit(&symbols);
        let bytes = model.to_bytes();
        let (restored, used) = HistogramModel::try_from_bytes(&bytes).expect("valid model");
        assert_eq!(used, bytes.len());
        assert_eq!(restored, model);
        assert!(restored.can_encode(0));
        assert!(!restored.can_encode(1_000_000));
        // A prepared model still decodes correctly after cloning (the warm
        // LUT travels with the clone — the shared-profile fast path).
        restored.prepare_decode();
        let cloned = restored.clone();
        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols);
        let stream = enc.finish();
        let mut dec = RangeDecoder::new(&stream);
        assert_eq!(cloned.decode(&mut dec, symbols.len()), symbols);
    }

    #[test]
    fn try_from_bytes_rejects_malformed_input_typed() {
        let model = HistogramModel::fit(&[1, 2, 2, 3, 3, 3]);
        let good = model.to_bytes();
        // Truncations anywhere in the stream fail typed, never panic.
        for cut in 0..good.len() {
            assert!(HistogramModel::try_from_bytes(&good[..cut]).is_err());
        }
        // Oversized bin count: rejected before the allocation is made.
        let mut huge = good.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            HistogramModel::try_from_bytes(&huge),
            Err(ModelDecodeError::OversizedBins { .. })
        ));
        // Entry offset outside the declared bins.
        let mut bad_off = good.clone();
        let entry0 = 12;
        bad_off[entry0..entry0 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            HistogramModel::try_from_bytes(&bad_off),
            Err(ModelDecodeError::BadOffset { .. })
        ));
        // All-zero mass is unusable by the coder.
        let mut zeroed = good.clone();
        let mut off = 12;
        while off + 8 <= zeroed.len() {
            zeroed[off + 4..off + 8].copy_from_slice(&0u32.to_le_bytes());
            off += 8;
        }
        assert!(matches!(
            HistogramModel::try_from_bytes(&zeroed),
            Err(ModelDecodeError::BadTotal)
        ));
    }

    #[test]
    fn bit_counter_accumulates() {
        let mut c = BitCounter::new();
        c.add_raw_bits(12.0);
        c.add_gaussian(0, 0.0, 1.0);
        assert!(c.bits() > 12.0);
        assert!(c.bytes() >= 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_gaussian_model_roundtrip(
            seed in 0u64..500,
            n in 1usize..400,
            scale in 0.1f32..6.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let means: Vec<f32> = (0..n).map(|_| rng.gen_range(-20.0..20.0)).collect();
            let scales: Vec<f32> = (0..n).map(|_| rng.gen_range(0.05..scale.max(0.06))).collect();
            let symbols: Vec<i32> = (0..n).map(|_| rng.gen_range(-200..200)).collect();
            let model = GaussianConditionalModel::new();
            let mut enc = RangeEncoder::new();
            model.encode(&mut enc, &symbols, &means, &scales);
            let bytes = enc.finish();
            let mut dec = RangeDecoder::new(&bytes);
            prop_assert_eq!(model.decode(&mut dec, &means, &scales), symbols);
        }

        #[test]
        fn prop_histogram_roundtrip(symbols in prop::collection::vec(-300i32..300, 1..500)) {
            let model = HistogramModel::fit(&symbols);
            let mut enc = RangeEncoder::new();
            model.encode(&mut enc, &symbols);
            let bytes = enc.finish();
            let mut dec = RangeDecoder::new(&bytes);
            prop_assert_eq!(model.decode(&mut dec, symbols.len()), symbols);
        }
    }
}
