//! Minimal rayon-compatible data-parallel iterators for offline builds.
//!
//! The model mirrors rayon's: a parallel iterator is a *splittable producer*
//! over contiguous index ranges.  Terminal operations cut the producer into
//! contiguous pieces and drive the pieces on the crate's **persistent
//! work-stealing pool** (see [`pool`]): the global pool is lazily created on
//! first use, honours `RAYON_NUM_THREADS`, and its long-lived workers serve
//! every subsequent terminal op, so hot tensor ops no longer pay a thread
//! spawn/join per call.  `for_each` side effects and `collect` results are
//! gathered in piece order and ordering-identical to the sequential path.
//! Fold-style reductions (`sum`) combine per-piece partials, so — exactly as
//! with real rayon — floating-point sums may regroup at piece boundaries and
//! depend on the piece count; code needing bit-stable aggregates should
//! `collect` and reduce sequentially (as `gld_core`'s block pipeline does).
//!
//! Scheduling, in brief:
//!
//! * work is split into *more pieces than workers* (`OVERSPLIT`-chunked,
//!   bounded below by `with_min_len`), and whichever worker frees up first
//!   takes the next piece — skewed per-piece costs no longer leave workers
//!   idle behind one contiguous expensive span;
//! * the submitting thread helps drain its own batch, so terminal ops
//!   complete even when every pool worker is busy (nested parallelism is
//!   deadlock-free by construction);
//! * workloads below an automatic weight threshold run inline on the calling
//!   thread; `with_min_len(n)` doubles as the opt-in for small-`len`
//!   workloads whose per-item cost is large (e.g. compressing one temporal
//!   block per item), exactly as before — it bounds the minimum items per
//!   piece like rayon's and marks the iterator as worth parallelising
//!   regardless of the weight heuristic;
//! * [`scope`] exposes the pool directly for long-lived concurrent jobs (the
//!   streaming block executor's worker/collector pair in `gld-core`).

#![deny(unsafe_code)]

pub mod pool;

pub use pool::{current_num_threads, scope, Scope, ThreadPool};

use std::ops::Range;

/// Total `f32`-element-sized work below which a terminal op stays inline.
const AUTO_PARALLEL_WEIGHT: usize = 16_384;

/// Pieces per worker a terminal op is cut into: with a shared batch queue, a
/// few extra pieces per worker let fast workers absorb skew instead of
/// idling, while keeping per-piece dispatch overhead negligible.
const OVERSPLIT: usize = 4;

fn worker_count() -> usize {
    pool::current_num_threads()
}

/// A splittable, contiguous parallel producer.
pub trait ParallelIterator: Sized + Send {
    /// Item produced for the consumer.
    type Item: Send;
    /// Sequential driver for one piece.
    type SeqIter: Iterator<Item = Self::Item> + Send;

    /// Number of items left.
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated total work in element-ops (drives the auto threshold).
    fn weight(&self) -> usize {
        self.len()
    }

    /// Explicit minimum items per piece, when set via [`Self::with_min_len`].
    fn min_split_len(&self) -> Option<usize> {
        None
    }

    /// Splits into `[0, index)` and `[index, len)` pieces.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Converts the remaining range into a sequential iterator.
    fn into_seq(self) -> Self::SeqIter;

    /// Bounds the minimum number of items a piece may hold and opts the
    /// iterator into parallel execution even when `len` is small.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen {
            inner: self,
            min: min.max(1),
        }
    }

    /// Maps every item through `f`.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync + Send + Clone,
    {
        Map { inner: self, f }
    }

    /// Pairs items positionally with `other` (lengths must match, as in
    /// rayon's indexed zip).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        assert_eq!(self.len(), other.len(), "zip length mismatch");
        Zip { a: self, b: other }
    }

    /// Attaches the global item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            offset: 0,
        }
    }

    /// Consumes every item with `f`, in parallel on the persistent pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let pieces = split_for_drive(self);
        if pieces.len() == 1 {
            for piece in pieces {
                piece.into_seq().for_each(&f);
            }
            return;
        }
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = pieces
            .into_iter()
            .map(|piece| {
                Box::new(move || piece.into_seq().for_each(f)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::join_all(jobs);
    }

    /// Sums the items, combining per-piece partial sums in piece order.
    /// Pieces follow the pool's shared chunking (several per worker), so one
    /// expensive span is stolen piecemeal instead of serialising a worker.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let mut pieces = split_for_drive(self);
        if pieces.len() == 1 {
            return pieces.remove(0).into_seq().sum();
        }
        let mut partials: Vec<Option<S>> = Vec::new();
        partials.resize_with(pieces.len(), || None);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = pieces
            .into_iter()
            .zip(partials.iter_mut())
            .map(|(piece, slot)| {
                Box::new(move || *slot = Some(piece.into_seq().sum::<S>()))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::join_all(jobs);
        partials
            .into_iter()
            .map(|slot| slot.expect("pool batch completed every piece"))
            .sum()
    }

    /// Collects the items in order (per-piece buffers concatenated in piece
    /// order, pieces executed work-stealing style on the pool).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let mut pieces = split_for_drive(self);
        if pieces.len() == 1 {
            return pieces.remove(0).into_seq().collect();
        }
        let mut gathered: Vec<Option<Vec<Self::Item>>> = Vec::new();
        gathered.resize_with(pieces.len(), || None);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = pieces
            .into_iter()
            .zip(gathered.iter_mut())
            .map(|(piece, slot)| {
                Box::new(move || *slot = Some(piece.into_seq().collect::<Vec<_>>()))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::join_all(jobs);
        gathered
            .into_iter()
            .flat_map(|slot| slot.expect("pool batch completed every piece"))
            .collect()
    }
}

fn split_for_drive<I: ParallelIterator>(iter: I) -> Vec<I> {
    let len = iter.len();
    if len == 0 {
        return vec![iter];
    }
    // Every terminal op shares this chunking: aim for OVERSPLIT pieces per
    // worker (never splitting below an explicit `with_min_len`), so the
    // pool's first-free-worker-takes-next-piece scheduling absorbs skewed
    // per-piece costs instead of leaving workers idle.  A single-worker
    // pool gains nothing from splitting — everything stays inline on the
    // calling thread, exactly as the pre-pool shim behaved.  `target` is
    // only evaluated on the arms that go parallel, so sub-threshold
    // workloads never touch (and never lazily spawn) the global pool.
    let target = || {
        let workers = worker_count();
        if workers == 1 {
            1
        } else {
            workers.saturating_mul(OVERSPLIT)
        }
    };
    let pieces = match iter.min_split_len() {
        Some(min) => len.div_ceil(min).min(target()),
        None if iter.weight() >= AUTO_PARALLEL_WEIGHT && len >= 2 => target(),
        None => 1,
    }
    .clamp(1, len);
    let mut out = Vec::with_capacity(pieces);
    let mut rest = iter;
    let mut remaining = len;
    let mut left = pieces;
    while left > 1 {
        let take = remaining.div_ceil(left);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
        remaining -= take;
        left -= 1;
    }
    out.push(rest);
    out
}

// ---------------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------------

/// Parallel `&[T]` iterator.
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index.min(self.slice.len()));
        (Iter { slice: a }, Iter { slice: b })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Parallel `&mut [T]` iterator.
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = index.min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Parallel non-overlapping `&[T]` chunks.
pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn weight(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            Chunks {
                slice: a,
                chunk: self.chunk,
            },
            Chunks {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.chunk)
    }
}

/// Parallel non-overlapping `&mut [T]` chunks.
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn weight(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMut {
                slice: a,
                chunk: self.chunk,
            },
            ChunksMut {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Parallel `Range<usize>` iterator.
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    type SeqIter = Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (self.range.start + index).min(self.range.end);
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.range
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<I> {
    inner: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    type SeqIter = I::SeqIter;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn weight(&self) -> usize {
        self.inner.weight()
    }

    fn min_split_len(&self) -> Option<usize> {
        Some(self.min)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            MinLen {
                inner: a,
                min: self.min,
            },
            MinLen {
                inner: b,
                min: self.min,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.inner.into_seq()
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, T, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(I::Item) -> T + Sync + Send + Clone,
{
    type Item = T;
    type SeqIter = std::iter::Map<I::SeqIter, F>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn weight(&self) -> usize {
        self.inner.weight()
    }

    fn min_split_len(&self) -> Option<usize> {
        self.inner.min_split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            Map {
                inner: a,
                f: self.f.clone(),
            },
            Map {
                inner: b,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.inner.into_seq().map(self.f)
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn weight(&self) -> usize {
        self.a.weight().max(self.b.weight())
    }

    fn min_split_len(&self) -> Option<usize> {
        match (self.a.min_split_len(), self.b.min_split_len()) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

/// Sequential driver for [`Enumerate`] (tracks the global offset).
pub struct SeqEnumerate<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for SeqEnumerate<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type SeqIter = SeqEnumerate<I::SeqIter>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn weight(&self) -> usize {
        self.inner.weight()
    }

    fn min_split_len(&self) -> Option<usize> {
        self.inner.min_split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            Enumerate {
                inner: a,
                offset: self.offset,
            },
            Enumerate {
                inner: b,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        SeqEnumerate {
            inner: self.inner.into_seq(),
            next: self.offset,
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// `par_iter`/`par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> Iter<'_, T>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, chunk: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }

    fn par_chunks(&self, chunk: usize) -> Chunks<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        Chunks { slice: self, chunk }
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunksMut { slice: self, chunk }
    }
}

/// Conversion into a parallel iterator (`0..n`, `Vec`, references).
pub trait IntoParallelIterator {
    /// Produced item type.
    type Item: Send;
    /// Producer type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn into_par_iter(self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn into_par_iter(self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// Everything a consumer normally imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let data: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = data.par_iter().with_min_len(1).map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mutates_every_chunk() {
        let mut data = vec![0f32; 100_000];
        data.par_chunks_mut(1000)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as f32;
                }
            });
        assert_eq!(data[0], 0.0);
        assert_eq!(data[99_999], 99.0);
        assert_eq!(data[50_500], 50.0);
    }

    #[test]
    fn zip_sum_matches_sequential() {
        let a: Vec<f32> = (0..50_000).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..50_000).map(|i| (i % 7) as f32).collect();
        let par: f64 = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum();
        let seq: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn small_workloads_run_inline_but_stay_correct() {
        let data = [1, 2, 3];
        let out: Vec<i32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..1000)
            .into_par_iter()
            .with_min_len(8)
            .map(|i| i * i)
            .collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }
}
