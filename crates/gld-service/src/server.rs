//! The sharded compression server.
//!
//! A long-running TCP server speaking the framed `GLDS` protocol
//! (`crate::protocol`).  One thread accepts connections; each connection
//! gets a handler thread that parses requests and routes them — by
//! deterministic key hash or round-robin (`crate::router`) — onto one of a
//! fixed set of **shards**.  Each shard is a worker thread draining a
//! bounded admission window: a request is only admitted while the shard has
//! fewer than `shard_window` requests in flight (admitted but not yet
//! responded), so a congested or slow-consuming shard pushes back on *its
//! own* submitters while every other shard keeps flowing.  All shards share
//! the one persistent `rayon` pool underneath: compress requests run the
//! bounded-memory streaming executor (`gld_core::executor`) whose collector
//! helps from the shard thread, so no shard can be starved by another's
//! pool usage.
//!
//! Compress responses are `GLDC` containers streamed straight from
//! [`gld_core::compress_variable_to_writer`] into the response body (capped
//! by `max_body`; an over-limit container aborts mid-stream and the
//! diagnostic reports how many frames were emitted).  Graceful shutdown —
//! [`Server::shutdown`], or a wire [`Op::Shutdown`] — stops accepting,
//! lets every admitted request finish and its response be written, then
//! joins every thread the server spawned.

use crate::metrics::{ServiceMetrics, ServiceMetricsSnapshot, ShardMetrics};
use crate::protocol::{
    self, FrameHeader, Op, ProtocolError, RawFrameHeader, Status, EXT_CONTAINER_STAGE,
    EXT_SHARED_PROFILES, HEADER_LEN,
};
use crate::router::{ShardPolicy, ShardRouter};
use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_core::container::HEADER_LEN as CONTAINER_HEADER_LEN;
use gld_core::{
    compress_variable_to_writer_fmt, Codec, CodecId, Container, ContainerFormat, StreamConfig,
    StreamMetrics,
};
use gld_datasets::Variable;
use gld_tensor::Tensor;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Server tuning.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of shards (per-shard worker threads).  Clamped to at least 1.
    pub shards: usize,
    /// Maximum requests admitted per shard at once (queued or executing,
    /// response not yet written).  Clamped to at least 1.
    pub shard_window: usize,
    /// Streaming-executor tuning for compress requests.
    pub stream: StreamConfig,
    /// Shard-assignment policy.
    pub policy: ShardPolicy,
    /// Maximum request *and* response body length in bytes (under the
    /// protocol's 1 GiB hard cap).
    pub max_body: u64,
    /// How often blocked reads wake to check for shutdown.
    pub poll_interval: Duration,
    /// Upper bound on one blocking socket write; a slower consumer loses
    /// its connection (its shard-window slot is released either way).
    pub write_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            shard_window: 4,
            stream: StreamConfig::default(),
            policy: ShardPolicy::HashKey,
            max_body: 256 << 20,
            poll_interval: Duration::from_millis(25),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// The set of codecs a server instance is willing to run, keyed by
/// [`CodecId`].  Registration order is irrelevant — negotiation follows the
/// *client's* preference order.
#[derive(Clone, Default)]
pub struct CodecRegistry {
    codecs: Vec<Arc<dyn Codec + Send + Sync>>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CodecRegistry::default()
    }

    /// The rule-based default: SZ3-like and ZFP-like (deterministic, fast,
    /// training-free — what the standalone `gld-serviced` binary runs).
    pub fn rule_based() -> Self {
        let mut registry = CodecRegistry::new();
        registry.register(Arc::new(SzCompressor::new()));
        registry.register(Arc::new(ZfpLikeCompressor::new()));
        registry
    }

    /// Registers `codec`, replacing any previous codec with the same id.
    pub fn register(&mut self, codec: Arc<dyn Codec + Send + Sync>) {
        let id = codec.id();
        self.codecs.retain(|c| c.id() != id);
        self.codecs.push(codec);
    }

    /// Looks a codec up by id.
    pub fn get(&self, id: CodecId) -> Option<Arc<dyn Codec + Send + Sync>> {
        self.codecs.iter().find(|c| c.id() == id).cloned()
    }

    /// Registered codec ids.
    pub fn ids(&self) -> Vec<CodecId> {
        self.codecs.iter().map(|c| c.id()).collect()
    }

    /// Picks the first of the client's proposals (raw id bytes, preference
    /// order) that is registered here — the `Hello` negotiation rule.
    pub fn negotiate(&self, proposals: &[u8]) -> Option<CodecId> {
        proposals
            .iter()
            .filter_map(|&byte| CodecId::from_u8(byte).ok())
            .find(|&id| self.get(id).is_some())
    }
}

/// One unit of shard work, executed on the shard's worker thread.
type ShardJob = Box<dyn FnOnce() + Send + 'static>;

/// What a shard job hands back to the connection handler.
struct ShardResult {
    status: Status,
    codec: u8,
    body: Vec<u8>,
    stream: Option<StreamMetrics>,
    blocks: usize,
}

/// Bounded admission queue for one shard.
struct ShardQueue {
    state: Mutex<ShardState>,
    /// Submitters wait here for the window to open.
    space: Condvar,
    /// The shard worker waits here for jobs.
    work: Condvar,
}

struct ShardState {
    jobs: VecDeque<ShardJob>,
    /// Requests admitted (queued or executing) whose responses are not yet
    /// written — the quantity the window bounds.
    in_flight: usize,
    stop: bool,
}

impl ShardQueue {
    fn new() -> Self {
        ShardQueue {
            state: Mutex::new(ShardState {
                jobs: VecDeque::new(),
                in_flight: 0,
                stop: false,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
        }
    }

    /// Blocks until the shard's window has room, then admits `job`.  This
    /// blocking is the backpressure: a congested shard stalls exactly the
    /// handlers submitting to it.  Returns `Err(())` once the shard stopped.
    /// The metrics gauge moves under the admission lock, so its peak can
    /// never exceed the window.
    fn submit(
        &self,
        window: usize,
        metrics: &ShardMetrics,
        request_bytes: usize,
        job: ShardJob,
    ) -> Result<(), ()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.in_flight >= window && !state.stop {
            state = self.space.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.stop {
            return Err(());
        }
        state.in_flight += 1;
        metrics.admit(request_bytes);
        state.jobs.push_back(job);
        drop(state);
        self.work.notify_one();
        Ok(())
    }

    /// Releases one window slot (response written or connection gone).
    fn release(&self, metrics: &ShardMetrics, response_bytes: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(state.in_flight > 0);
        state.in_flight -= 1;
        metrics.complete(response_bytes);
        drop(state);
        self.space.notify_one();
    }

    /// Worker side: next job, or `None` once stopped *and* drained.
    fn next_job(&self) -> Option<ShardJob> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.stop {
                return None;
            }
            state = self.work.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn stop(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.stop = true;
        drop(state);
        self.work.notify_all();
        self.space.notify_all();
    }
}

struct ServerShared {
    config: ServiceConfig,
    registry: CodecRegistry,
    router: ShardRouter,
    metrics: ServiceMetrics,
    shards: Vec<ShardQueue>,
    addr: SocketAddr,
    shutdown: AtomicBool,
    shutdown_cv: (Mutex<bool>, Condvar),
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ServerShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Idempotently starts the graceful-shutdown sequence: stop admitting
    /// connections/requests and wake everything that might be waiting.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the acceptor (it is blocked in `accept`).
        let _ = TcpStream::connect(self.addr);
        // Wake `Server::wait`.
        let (flag, cv) = &self.shutdown_cv;
        *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }
}

/// A running sharded compression server.
///
/// Dropping the handle performs a graceful shutdown; call
/// [`Server::shutdown`] to do it explicitly or [`Server::wait`] to serve
/// until a wire [`Op::Shutdown`] arrives.
pub struct Server {
    shared: Arc<ServerShared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the shard workers and the acceptor, and returns the
    /// running server.
    pub fn start(config: ServiceConfig, registry: CodecRegistry) -> std::io::Result<Server> {
        assert!(!registry.codecs.is_empty(), "registry has no codecs");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shards = config.shards.max(1);
        let shared = Arc::new(ServerShared {
            router: ShardRouter::new(shards, config.policy),
            metrics: ServiceMetrics::new(shards),
            shards: (0..shards).map(|_| ShardQueue::new()).collect(),
            addr,
            shutdown: AtomicBool::new(false),
            shutdown_cv: (Mutex::new(false), Condvar::new()),
            handlers: Mutex::new(Vec::new()),
            config,
            registry,
        });
        let workers = (0..shards)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gld-service-shard-{index}"))
                    .spawn(move || shard_worker(&shared, index))
                    .expect("spawn shard worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("gld-service-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain every admitted request
    /// (responses are written), then join every thread.
    pub fn shutdown(mut self) -> ServiceMetricsSnapshot {
        self.shared.trigger_shutdown();
        self.join_all();
        self.shared.metrics.snapshot()
    }

    /// Serves until a wire [`Op::Shutdown`] request arrives, then drains and
    /// joins exactly like [`Server::shutdown`].
    pub fn wait(mut self) -> ServiceMetricsSnapshot {
        {
            let (flag, cv) = &self.shared.shutdown_cv;
            let mut done = flag.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.join_all();
        self.shared.metrics.snapshot()
    }

    fn join_all(&mut self) {
        // Acceptor first: once it is gone no new handler threads appear.
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Handlers next: each finishes its in-flight request (the shard
        // workers are still running and draining) and exits on the flag.
        let handlers = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for handle in handlers {
            let _ = handle.join();
        }
        // Shards last: every admitted job has been executed and responded
        // to by now, so stopping is an empty-queue no-op.
        for shard in &self.shared.shards {
            shard.stop();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.trigger_shutdown();
            self.join_all();
        }
    }
}

fn accept_loop(shared: &Arc<ServerShared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.is_shutdown() {
                    // The wake-up connection (or a late client): refuse.
                    drop(stream);
                    break;
                }
                shared.metrics.connection_opened();
                let shared_conn = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("gld-service-conn".into())
                    .spawn(move || {
                        handle_connection(&shared_conn, stream);
                        shared_conn.metrics.connection_closed();
                    })
                    .expect("spawn connection handler");
                let mut handlers = shared.handlers.lock().unwrap_or_else(|e| e.into_inner());
                handlers.push(handle);
                // Reap handlers whose connections already ended, so a
                // long-running server does not accumulate one unjoined
                // thread (stack and all) per connection it ever served.
                let mut live = Vec::with_capacity(handlers.len());
                for handle in handlers.drain(..) {
                    if handle.is_finished() {
                        let _ = handle.join();
                    } else {
                        live.push(handle);
                    }
                }
                *handlers = live;
            }
            Err(_) => {
                if shared.is_shutdown() {
                    break;
                }
                // Transient accept failures (EMFILE under fd exhaustion,
                // ECONNABORTED, ...): back off instead of busy-spinning a
                // core while the condition persists.
                thread::sleep(shared.config.poll_interval);
            }
        }
    }
}

fn shard_worker(shared: &Arc<ServerShared>, index: usize) {
    while let Some(job) = shared.shards[index].next_job() {
        job();
    }
}

/// Outcome of trying to read `buf.len()` bytes with shutdown polling.
enum FillOutcome {
    Filled,
    /// Peer closed (clean EOF at a frame boundary), mid-frame disconnect, a
    /// non-timeout I/O error, or shutdown — in every case the connection is
    /// done.
    Closed,
}

/// Reads a `len`-byte frame body, growing the buffer in bounded steps as
/// bytes actually arrive — a client declaring a large body but trickling
/// (or never sending) it can only cost memory proportional to what it
/// transmitted, not to what it declared.
fn fill_body(shared: &ServerShared, stream: &mut TcpStream, len: usize) -> Option<Vec<u8>> {
    const STEP: usize = 1 << 20;
    let mut body = Vec::new();
    while body.len() < len {
        let start = body.len();
        body.resize(start + (len - start).min(STEP), 0);
        if matches!(
            fill_exact(shared, stream, &mut body[start..]),
            FillOutcome::Closed
        ) {
            return None;
        }
    }
    Some(body)
}

/// Reads exactly `buf.len()` bytes, waking every `poll_interval` to check
/// the shutdown flag (requests not yet fully read when shutdown starts are
/// abandoned — only *admitted* work is drained).
fn fill_exact(shared: &ServerShared, stream: &mut TcpStream, buf: &mut [u8]) -> FillOutcome {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return FillOutcome::Closed,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.is_shutdown() {
                    return FillOutcome::Closed;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FillOutcome::Closed,
        }
    }
    FillOutcome::Filled
}

/// Writes one response frame; an error here ends the connection.
fn respond(
    stream: &mut TcpStream,
    op: Op,
    codec: u8,
    status: Status,
    request_id: u64,
    body: &[u8],
) -> std::io::Result<()> {
    let header = FrameHeader::response(op, codec, status, request_id, body.len() as u64);
    protocol::write_frame(stream, &header, body)
}

fn respond_error(
    stream: &mut TcpStream,
    op: Op,
    status: Status,
    request_id: u64,
    message: &str,
) -> std::io::Result<()> {
    respond(stream, op, 0, status, request_id, message.as_bytes())
}

fn handle_connection(shared: &Arc<ServerShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut session_codec: Option<CodecId> = None;
    // Whether this session negotiated the container v3 per-frame stage in
    // `Hello` (old clients never set the bit and transparently receive
    // stage-free v2 responses).
    let mut session_stage = false;
    // Whether this session negotiated container v4 shared profiles in
    // `Hello`; takes precedence over the stage for compress responses.
    let mut session_profiles = false;

    loop {
        if shared.is_shutdown() {
            break;
        }
        // ── frame header ────────────────────────────────────────────────
        let mut header_bytes = [0u8; HEADER_LEN];
        if matches!(
            fill_exact(shared, &mut stream, &mut header_bytes),
            FillOutcome::Closed
        ) {
            break;
        }
        let raw = match RawFrameHeader::decode(&header_bytes) {
            Ok(raw) => raw,
            Err(e) => {
                // Framing failure: the stream position cannot be trusted.
                // Answer best-effort (the peer may be mid-garbage) and close.
                shared.metrics.request_rejected();
                let _ = respond_error(
                    &mut stream,
                    Op::Ping,
                    protocol::status_for(&e),
                    0,
                    &e.to_string(),
                );
                break;
            }
        };
        if raw.body_len > shared.config.max_body {
            // The body is knowably huge; refuse without reading it, then
            // close (the unread body would desynchronise the stream).
            shared.metrics.request_rejected();
            let e = ProtocolError::BodyTooLarge {
                declared: raw.body_len,
                max: shared.config.max_body,
            };
            let _ = respond_error(
                &mut stream,
                Op::Ping,
                Status::FrameTooLarge,
                raw.request_id,
                &e.to_string(),
            );
            break;
        }
        // ── frame body ──────────────────────────────────────────────────
        let Some(body) = fill_body(shared, &mut stream, raw.body_len as usize) else {
            break;
        };
        // Framing is intact from here on: errors are answered and the
        // connection keeps serving.
        let header = match raw.validate() {
            Ok(header) => header,
            Err(e) => {
                shared.metrics.request_rejected();
                // No valid op to echo; `Ping` is the designated neutral op
                // for error responses (the status carries the diagnosis).
                if respond_error(
                    &mut stream,
                    Op::Ping,
                    protocol::status_for(&e),
                    raw.request_id,
                    &e.to_string(),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };
        if header.status != Status::Ok {
            shared.metrics.request_rejected();
            if respond_error(
                &mut stream,
                header.op,
                Status::Malformed,
                header.request_id,
                "request frames must carry status 0",
            )
            .is_err()
            {
                break;
            }
            continue;
        }

        // ── dispatch ────────────────────────────────────────────────────
        let keep_going = match header.op {
            Op::Ping => {
                respond(&mut stream, Op::Ping, 0, Status::Ok, header.request_id, &[]).is_ok()
            }
            Op::Hello => handle_hello(
                shared,
                &mut stream,
                &header,
                &body,
                &mut session_codec,
                &mut session_stage,
                &mut session_profiles,
            ),
            Op::Shutdown => {
                let _ = respond(
                    &mut stream,
                    Op::Shutdown,
                    0,
                    Status::Ok,
                    header.request_id,
                    &[],
                );
                shared.trigger_shutdown();
                false
            }
            Op::Compress => handle_compress(
                shared,
                &mut stream,
                &header,
                &body,
                session_codec,
                session_stage,
                session_profiles,
            ),
            Op::Decompress => handle_decompress(shared, &mut stream, &header, &body),
        };
        if !keep_going {
            break;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_hello(
    shared: &Arc<ServerShared>,
    stream: &mut TcpStream,
    header: &FrameHeader,
    body: &[u8],
    session_codec: &mut Option<CodecId>,
    session_stage: &mut bool,
    session_profiles: &mut bool,
) -> bool {
    let request = match protocol::HelloRequest::decode_body(body) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.request_rejected();
            return respond_error(
                stream,
                Op::Hello,
                protocol::status_for(&e),
                header.request_id,
                &e.to_string(),
            )
            .is_ok();
        }
    };
    match shared.registry.negotiate(&request.proposals) {
        Some(chosen) => {
            *session_codec = Some(chosen);
            // Capability-and-echo: a feature is on exactly when the client
            // advertised it, and the echoed bit tells the client so.
            *session_stage = header.ext & EXT_CONTAINER_STAGE != 0;
            *session_profiles = header.ext & EXT_SHARED_PROFILES != 0;
            let info = protocol::HelloResponse {
                shards: shared.router.shards() as u32,
                shard_window: shared.config.shard_window.max(1) as u32,
                queue_depth: shared.config.stream.queue_depth.max(1) as u32,
            };
            let body = info.encode_body();
            let mut echo = 0u8;
            if *session_stage {
                echo |= EXT_CONTAINER_STAGE;
            }
            if *session_profiles {
                echo |= EXT_SHARED_PROFILES;
            }
            let response = FrameHeader::response(
                Op::Hello,
                chosen as u8,
                Status::Ok,
                header.request_id,
                body.len() as u64,
            )
            .with_ext(echo);
            protocol::write_frame(stream, &response, &body).is_ok()
        }
        None => {
            shared.metrics.request_rejected();
            respond_error(
                stream,
                Op::Hello,
                Status::NoCommonCodec,
                header.request_id,
                "none of the proposed codecs is registered on this server",
            )
            .is_ok()
        }
    }
}

/// Resolves the codec for a request: an explicit header byte wins, else the
/// session default from `Hello`.
fn resolve_codec(
    shared: &ServerShared,
    header_codec: u8,
    session_codec: Option<CodecId>,
) -> Result<Arc<dyn Codec + Send + Sync>, (Status, String)> {
    let id = if header_codec != 0 {
        CodecId::from_u8(header_codec).map_err(|_| {
            (
                Status::UnknownCodec,
                format!("unknown codec id {header_codec}"),
            )
        })?
    } else {
        session_codec.ok_or((
            Status::UnknownCodec,
            "no codec: set the header codec byte or negotiate one with Hello".to_string(),
        ))?
    };
    shared.registry.get(id).ok_or((
        Status::UnknownCodec,
        format!("codec {id:?} is not registered"),
    ))
}

/// A `Vec` sink that refuses to grow past `limit` — the response-body cap
/// enforced *during* container streaming, so an over-limit compress aborts
/// early instead of buffering without bound.
struct LimitedSink {
    buf: Vec<u8>,
    limit: usize,
}

impl Write for LimitedSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.buf.len() + data.len() > self.limit {
            return Err(std::io::Error::other(format!(
                "response body limit of {} bytes exceeded",
                self.limit
            )));
        }
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "codec panicked".to_string()
    }
}

/// Runs one admitted request through its shard and writes the response.
/// Owns the full admit → execute → respond → release cycle so the window
/// slot is released on every path.
fn run_sharded(
    shared: &Arc<ServerShared>,
    stream: &mut TcpStream,
    header: &FrameHeader,
    shard: usize,
    request_bytes: usize,
    job: impl FnOnce() -> ShardResult + Send + 'static,
) -> bool {
    let (tx, rx) = sync_channel::<ShardResult>(1);
    let wrapped: ShardJob = Box::new(move || {
        let _ = tx.send(job());
    });
    let window = shared.config.shard_window.max(1);
    let metrics = shared.metrics.shard(shard);
    if shared.shards[shard]
        .submit(window, metrics, request_bytes, wrapped)
        .is_err()
    {
        shared.metrics.request_rejected();
        return respond_error(
            stream,
            header.op,
            Status::ShuttingDown,
            header.request_id,
            "server is draining",
        )
        .is_ok();
    }
    let result = rx.recv().unwrap_or(ShardResult {
        status: Status::ShuttingDown,
        codec: 0,
        body: b"shard stopped before the request ran".to_vec(),
        stream: None,
        blocks: 0,
    });
    if let Some(stream_metrics) = &result.stream {
        metrics.record_stream(stream_metrics);
    } else if result.blocks > 0 {
        metrics.record_blocks(result.blocks);
    }
    let ok = respond(
        stream,
        header.op,
        result.codec,
        result.status,
        header.request_id,
        &result.body,
    )
    .is_ok();
    // The slot is held until the response bytes are handed to the socket:
    // a consumer slower than `write_timeout` keeps its shard's window
    // occupied (and only its shard's), which is the backpressure contract.
    shared.shards[shard].release(metrics, result.body.len());
    ok
}

#[allow(clippy::too_many_arguments)]
fn handle_compress(
    shared: &Arc<ServerShared>,
    stream: &mut TcpStream,
    header: &FrameHeader,
    body: &[u8],
    session_codec: Option<CodecId>,
    session_stage: bool,
    session_profiles: bool,
) -> bool {
    let request = match protocol::CompressRequest::decode_body(body) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.request_rejected();
            return respond_error(
                stream,
                Op::Compress,
                protocol::status_for(&e),
                header.request_id,
                &e.to_string(),
            )
            .is_ok();
        }
    };
    let codec = match resolve_codec(shared, header.codec, session_codec) {
        Ok(codec) => codec,
        Err((status, message)) => {
            shared.metrics.request_rejected();
            return respond_error(stream, Op::Compress, status, header.request_id, &message)
                .is_ok();
        }
    };
    let [t, h, w] = request.dims;
    if (t as usize) < request.block_frames as usize {
        // `checked_windows` panics on a zero-window variable; the server
        // must refuse it as a typed error instead.
        shared.metrics.request_rejected();
        let message = format!(
            "variable has {t} timesteps, too few for one {}-frame block",
            request.block_frames
        );
        return respond_error(
            stream,
            Op::Compress,
            Status::Malformed,
            header.request_id,
            &message,
        )
        .is_ok();
    }
    let shard = shared.router.route(&request.key);
    let variable = Variable::new(
        request.key,
        Tensor::from_vec(request.data, &[t as usize, h as usize, w as usize]),
    );
    let block_frames = request.block_frames as usize;
    let target = request.target;
    let stream_config = shared.config.stream;
    let limit = shared.config.max_body as usize;
    let codec_byte = codec.id() as u8;
    let request_bytes = body.len();
    // Profile-negotiated sessions get the v4 (shared coding profile)
    // container, stage-negotiated sessions the v3 (per-frame gld-lz stage)
    // one; everyone else gets the stage-free v2 stream their decoder
    // predates the stage for.
    let format = if session_profiles {
        ContainerFormat::V4
    } else if session_stage {
        ContainerFormat::V3
    } else {
        ContainerFormat::V2
    };

    run_sharded(shared, stream, header, shard, request_bytes, move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            compress_variable_to_writer_fmt(
                codec.as_ref(),
                &variable,
                block_frames,
                target,
                stream_config,
                format,
                LimitedSink {
                    buf: Vec::new(),
                    limit,
                },
            )
        }));
        match outcome {
            Ok(Ok((sink, _stats, metrics))) => ShardResult {
                status: Status::Ok,
                codec: codec_byte,
                body: sink.buf,
                stream: Some(metrics),
                blocks: 0,
            },
            Ok(Err(e)) => ShardResult {
                // The partial-write diagnostic: how far the container got
                // before the sink refused (`StreamWriteError::frames_emitted`).
                status: Status::FrameTooLarge,
                codec: codec_byte,
                body: e.to_string().into_bytes(),
                stream: None,
                blocks: e.frames_emitted,
            },
            Err(payload) => ShardResult {
                status: Status::Internal,
                codec: codec_byte,
                body: panic_message(payload.as_ref()).into_bytes(),
                stream: None,
                blocks: 0,
            },
        }
    })
}

fn handle_decompress(
    shared: &Arc<ServerShared>,
    stream: &mut TcpStream,
    header: &FrameHeader,
    body: &[u8],
) -> bool {
    let request = match protocol::DecompressRequest::decode_body(body) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.request_rejected();
            return respond_error(
                stream,
                Op::Decompress,
                protocol::status_for(&e),
                header.request_id,
                &e.to_string(),
            )
            .is_ok();
        }
    };
    // Cheap pre-admission peek at the container's codec byte; the full
    // (CRC-checked) decode runs on the shard.
    if request.container.len() < CONTAINER_HEADER_LEN {
        shared.metrics.request_rejected();
        return respond_error(
            stream,
            Op::Decompress,
            Status::BadContainer,
            header.request_id,
            "container shorter than its fixed header",
        )
        .is_ok();
    }
    let codec = match CodecId::from_u8(request.container[6])
        .ok()
        .and_then(|id| shared.registry.get(id))
    {
        Some(codec) => codec,
        None => {
            shared.metrics.request_rejected();
            return respond_error(
                stream,
                Op::Decompress,
                Status::UnknownCodec,
                header.request_id,
                &format!(
                    "container codec id {} is not registered",
                    request.container[6]
                ),
            )
            .is_ok();
        }
    };
    let shard = shared.router.route(&request.key);
    let codec_byte = codec.id() as u8;
    let container_bytes = request.container;
    let limit = shared.config.max_body as usize;
    let request_bytes = body.len();

    run_sharded(shared, stream, header, shard, request_bytes, move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let container = Container::decode(&container_bytes)
                .map_err(|e| (Status::BadContainer, e.to_string()))?;
            let blocks = codec
                .decompress_container(&container)
                .map_err(|e| (Status::BadContainer, e.to_string()))?;
            let body = protocol::encode_blocks_body(&blocks);
            if body.len() > limit {
                return Err((
                    Status::FrameTooLarge,
                    format!(
                        "decompressed body of {} bytes exceeds the {limit}-byte limit",
                        body.len()
                    ),
                ));
            }
            Ok((body, blocks.len()))
        }));
        match outcome {
            Ok(Ok((body, blocks))) => ShardResult {
                status: Status::Ok,
                codec: codec_byte,
                body,
                stream: None,
                blocks,
            },
            Ok(Err((status, message))) => ShardResult {
                status,
                codec: codec_byte,
                body: message.into_bytes(),
                stream: None,
                blocks: 0,
            },
            Err(payload) => ShardResult {
                status: Status::Internal,
                codec: codec_byte,
                body: panic_message(payload.as_ref()).into_bytes(),
                stream: None,
                blocks: 0,
            },
        }
    })
}
