//! The unified compressor interface.
//!
//! Every compressor family in the stack — the generative latent diffusion
//! pipeline, the SZ3-like and ZFP-like rule-based coders, and the learned
//! per-frame baselines — implements [`Codec`], so the integration tests and
//! every `gld-bench` binary drive all of them through one call path with
//! shared compression-ratio / NRMSE accounting (paper Eq. 11) instead of
//! four bespoke protocols.
//!
//! A codec turns a `[N, H, W]` block into a self-describing byte *frame* and
//! back.  The provided [`Codec::compress_variable`] method tiles a variable
//! into temporal windows, compresses the windows **in parallel** (block
//! index-derived seeds keep the output bit-identical to the sequential
//! path — see `tests/container_roundtrip.rs`), and packs the frames into a
//! [`Container`] whose measured encoded length *is* the reported size.

use crate::container::{write_section, ByteReader, CodecId, Container, ContainerError};
use crate::error_bound::{ErrorBoundConfig, PcaErrorBound};
use crate::learned_baselines::{LearnedBaseline, LearnedBaselineKind};
use gld_baselines::{ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_datasets::{blocks, Variable};
use gld_tensor::Tensor;
use rayon::prelude::*;

/// Reconstruction-quality target for a lossy compressor, in either of the
/// two conventions the paper's evaluation uses.
///
/// Each codec honours the target in its *native* guarantee:
///
/// * the rule-based codecs (SZ3-like, ZFP-like) bound point-wise error, so
///   an [`ErrorTarget::Nrmse`] target is converted conservatively — a
///   point-wise bound of `t × range` implies NRMSE ≤ `t`;
/// * the GLD pipeline and the learned baselines bound NRMSE (the paper's
///   PCA error-bound module, §3.5), so an [`ErrorTarget::PointwiseAbs`]
///   target is interpreted as the NRMSE bound `abs / range`.  That is a
///   **weaker** guarantee: individual values may still deviate by more than
///   `abs`.  Callers needing a strict point-wise bound should use the
///   rule-based codecs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorTarget {
    /// Bound on the normalised RMSE of the reconstructed block.
    Nrmse(f32),
    /// Bound on the point-wise absolute error of every reconstructed value.
    PointwiseAbs(f32),
}

impl ErrorTarget {
    /// The equivalent point-wise absolute bound for `block`.  A point-wise
    /// bound of `t * range` implies NRMSE ≤ `t`, so this conversion is
    /// conservative for codecs that guarantee point-wise error.
    pub fn pointwise_for(&self, block: &Tensor) -> f32 {
        match *self {
            ErrorTarget::PointwiseAbs(abs) => abs,
            ErrorTarget::Nrmse(t) => t * (block.max() - block.min()).max(1e-30),
        }
    }

    /// The equivalent NRMSE bound for `block`.  Note the asymmetry: a
    /// point-wise bound implies this NRMSE bound, but the converse does not
    /// hold — see the type-level docs on [`ErrorTarget`].
    pub fn nrmse_for(&self, block: &Tensor) -> f32 {
        match *self {
            ErrorTarget::Nrmse(t) => t,
            ErrorTarget::PointwiseAbs(abs) => abs / (block.max() - block.min()).max(1e-30),
        }
    }
}

/// Aggregate accounting for one compressed variable (or a merged set of
/// variables), shared by every codec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VariableStats {
    /// Number of compressed temporal blocks.
    pub blocks: usize,
    /// Uncompressed bytes covered by those blocks.
    pub original_bytes: usize,
    /// Encoded container length in bytes — by construction identical to
    /// `container.encode().len()`.
    pub compressed_bytes: usize,
    /// `original_bytes / compressed_bytes` (Eq. 11).
    pub compression_ratio: f64,
    /// NRMSE of the reconstruction over all blocks (range taken over the
    /// covered frames).
    pub nrmse: f32,
    /// `(min, max)` of the covered original values — what the NRMSE is
    /// normalised by, kept so stats from several variables can be merged.
    pub value_range: (f32, f32),
}

impl VariableStats {
    /// Merges per-variable stats into dataset-level accounting: byte counts
    /// add up, and the NRMSE is recomputed against the global value range
    /// (exactly how the paper's per-dataset figures aggregate).
    pub fn merge(stats: &[VariableStats]) -> VariableStats {
        assert!(!stats.is_empty(), "cannot merge zero stats");
        let mut blocks = 0usize;
        let mut original_bytes = 0usize;
        let mut compressed_bytes = 0usize;
        let mut sq_err = 0.0f64;
        let mut numel = 0usize;
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for s in stats {
            blocks += s.blocks;
            original_bytes += s.original_bytes;
            compressed_bytes += s.compressed_bytes;
            let count = s.original_bytes / std::mem::size_of::<f32>();
            let rmse = (s.nrmse * (s.value_range.1 - s.value_range.0).max(1e-30)) as f64;
            sq_err += rmse * rmse * count as f64;
            numel += count;
            lo = lo.min(s.value_range.0);
            hi = hi.max(s.value_range.1);
        }
        VariableStats {
            blocks,
            original_bytes,
            compressed_bytes,
            compression_ratio: original_bytes as f64 / compressed_bytes.max(1) as f64,
            nrmse: ((sq_err / numel.max(1) as f64).sqrt() as f32) / (hi - lo).max(1e-30),
            value_range: (lo, hi),
        }
    }
}

/// A block compressor with a self-describing byte-frame format.
///
/// `Sync` is required so the provided `compress_variable` can fan blocks out
/// across threads.
pub trait Codec: Sync {
    /// Display name matching the paper's figures.
    fn name(&self) -> &str;

    /// Container codec id for frames produced by this codec.
    fn id(&self) -> CodecId;

    /// Compresses a `[N, H, W]` block into a self-describing frame.
    ///
    /// `block_index` is the temporal window index within the variable;
    /// stochastic codecs derive their sampling seed from it so distinct
    /// blocks never share a noise realisation while identical inputs still
    /// produce identical frames.  Deterministic codecs ignore it.
    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
    ) -> Vec<u8>;

    /// Reconstructs a block from a frame produced by this codec.
    fn decompress_block(&self, frame: &[u8]) -> Tensor;

    /// Compresses a standalone block (window index 0).
    fn compress_block(&self, block: &Tensor, target: Option<ErrorTarget>) -> Vec<u8> {
        self.compress_block_at(block, target, 0)
    }

    /// Compresses every complete temporal window of `variable` in parallel
    /// and packs the frames into a [`Container`], returning it with the
    /// shared ratio/NRMSE accounting.  Bit-identical to
    /// [`Codec::compress_variable_sequential`].
    fn compress_variable(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Container, VariableStats) {
        compress_windows(self, variable, block_frames, target, true)
    }

    /// Sequential reference implementation of [`Codec::compress_variable`],
    /// kept callable so determinism is testable.
    fn compress_variable_sequential(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Container, VariableStats) {
        compress_windows(self, variable, block_frames, target, false)
    }

    /// Compresses every variable of a dataset (one [`Container`] per
    /// variable, parallel within each) and merges the accounting into
    /// dataset-level stats — the aggregation every rate–distortion figure
    /// uses.
    fn compress_dataset(
        &self,
        variables: &[Variable],
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Vec<Container>, VariableStats) {
        assert!(!variables.is_empty(), "dataset has no variables");
        let mut containers = Vec::with_capacity(variables.len());
        let mut stats = Vec::with_capacity(variables.len());
        for variable in variables {
            let (container, s) = self.compress_variable(variable, block_frames, target);
            containers.push(container);
            stats.push(s);
        }
        (containers, VariableStats::merge(&stats))
    }

    /// Decompresses a whole container produced by
    /// [`Codec::compress_variable`], returning the blocks in temporal order.
    fn decompress_container(&self, container: &Container) -> Result<Vec<Tensor>, ContainerError> {
        if container.codec() != self.id() {
            return Err(ContainerError::Corrupt(
                "container codec id does not match this codec",
            ));
        }
        Ok(container
            .blocks()
            .iter()
            .map(|frame| self.decompress_block(frame))
            .collect())
    }
}

/// Per-window partial result, aggregated in window order so parallel and
/// sequential execution produce identical statistics.
struct WindowResult {
    frame: Vec<u8>,
    sq_err: f64,
    numel: usize,
    lo: f32,
    hi: f32,
}

fn compress_windows<C: Codec + ?Sized>(
    codec: &C,
    variable: &Variable,
    block_frames: usize,
    target: Option<ErrorTarget>,
    parallel: bool,
) -> (Container, VariableStats) {
    let count = blocks::temporal_window_count(variable, block_frames);
    assert!(
        count > 0,
        "variable '{}' has {} timesteps, too few for one {}-frame block",
        variable.name,
        variable.timesteps(),
        block_frames
    );
    let process = |index: usize| -> WindowResult {
        let window = blocks::temporal_window_at(variable, block_frames, index);
        let frame = codec.compress_block_at(&window.data, target, index as u64);
        let recon = codec.decompress_block(&frame);
        let mut sq_err = 0.0f64;
        for (a, b) in window.data.data().iter().zip(recon.data()) {
            let d = (*a - *b) as f64;
            sq_err += d * d;
        }
        WindowResult {
            frame,
            sq_err,
            numel: window.data.numel(),
            lo: window.data.min(),
            hi: window.data.max(),
        }
    };
    let results: Vec<WindowResult> = if parallel {
        (0..count)
            .into_par_iter()
            .with_min_len(1)
            .map(process)
            .collect()
    } else {
        (0..count).map(process).collect()
    };

    let mut container = Container::new(codec.id());
    let mut sq_err = 0.0f64;
    let mut numel = 0usize;
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for result in results {
        container.push(result.frame);
        sq_err += result.sq_err;
        numel += result.numel;
        lo = lo.min(result.lo);
        hi = hi.max(result.hi);
    }
    let original_bytes = numel * std::mem::size_of::<f32>();
    let compressed_bytes = container.encoded_len();
    let stats = VariableStats {
        blocks: count,
        original_bytes,
        compressed_bytes,
        compression_ratio: original_bytes as f64 / compressed_bytes.max(1) as f64,
        nrmse: ((sq_err / numel as f64).sqrt() as f32) / (hi - lo).max(1e-30),
        value_range: (lo, hi),
    };
    (container, stats)
}

/// Default relative point-wise bound applied by the rule-based codecs when
/// no explicit target is given (they are always error-bounded).
const DEFAULT_RULE_REL_BOUND: f32 = 1e-3;

fn rule_based_bound(block: &Tensor, target: Option<ErrorTarget>) -> f32 {
    match target {
        Some(t) => t.pointwise_for(block),
        None => DEFAULT_RULE_REL_BOUND * (block.max() - block.min()).max(1e-30),
    }
}

impl Codec for SzCompressor {
    fn name(&self) -> &str {
        "SZ3-like"
    }

    fn id(&self) -> CodecId {
        CodecId::SzLike
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Vec<u8> {
        ErrorBoundedCompressor::compress(self, block, rule_based_bound(block, target))
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        ErrorBoundedCompressor::decompress(self, frame)
    }
}

impl Codec for ZfpLikeCompressor {
    fn name(&self) -> &str {
        "ZFP-like"
    }

    fn id(&self) -> CodecId {
        CodecId::ZfpLike
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Vec<u8> {
        ErrorBoundedCompressor::compress(self, block, rule_based_bound(block, target))
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        ErrorBoundedCompressor::decompress(self, frame)
    }
}

/// Learned baselines frame layout: latent section + PCA correction section
/// (both length-prefixed; the correction is empty when no target was given).
impl Codec for LearnedBaseline<'_> {
    fn name(&self) -> &str {
        self.kind().name()
    }

    fn id(&self) -> CodecId {
        match self.kind() {
            LearnedBaselineKind::CdcX => CodecId::CdcX,
            LearnedBaselineKind::CdcEps => CodecId::CdcEps,
            LearnedBaselineKind::Gcd => CodecId::Gcd,
            LearnedBaselineKind::VaeSr => CodecId::VaeSr,
        }
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Vec<u8> {
        let latent = self.compress(block);
        // All learned methods share the paper's PCA error-bound
        // post-processing (§4.1): the correction stream rides along in the
        // frame so the bound survives the round trip.
        let aux = match target {
            Some(t) => {
                let recon = self.decompress(&latent);
                let module = PcaErrorBound::new(ErrorBoundConfig::default());
                let tau = PcaErrorBound::tau_for_nrmse(block, t.nrmse_for(block));
                let (_, aux, _) = module.apply(block, &recon, tau);
                aux
            }
            None => Vec::new(),
        };
        let mut frame = Vec::with_capacity(16 + latent.len() + aux.len());
        write_section(&mut frame, &latent);
        write_section(&mut frame, &aux);
        frame
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        let mut reader = ByteReader::new(frame);
        let latent = reader
            .read_section()
            .expect("learned baseline frame: latent section");
        let aux = reader
            .read_section()
            .expect("learned baseline frame: correction section");
        reader
            .expect_end()
            .expect("learned baseline frame: trailing bytes");
        let recon = self.decompress(latent);
        if aux.is_empty() {
            recon
        } else {
            PcaErrorBound::new(ErrorBoundConfig::default()).apply_from_aux(&recon, aux)
        }
    }
}
