//! The framed `GLDS` wire protocol.
//!
//! Every message — request or response — is one *frame*: a fixed 32-byte
//! header followed by a `u64` length-prefixed body.  All integers are
//! little-endian.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GLDS"
//! 4       2     protocol version (currently 1)
//! 6       1     op (see [`Op`])
//! 7       1     codec id (a `CodecId` byte, or 0 = none/session default)
//! 8       1     status (requests: must be 0; responses: see [`Status`])
//! 9       1     feature bits (`ext`): bit 0 = container-stage support
//!               ([`EXT_CONTAINER_STAGE`]), bit 1 = shared-profile support
//!               ([`EXT_SHARED_PROFILES`]), bit 2 = status latency
//!               summaries ([`EXT_STATUS_SUMMARIES`]); unknown bits are
//!               **ignored**
//! 10      6     reserved; decoders ignore the contents
//! 16      8     request id (echoed verbatim in the response)
//! 24      8     body length in bytes
//! 32      ...   body
//! ```
//!
//! Reserved space is negotiation headroom, not a tripwire: decoders ignore
//! bits they do not understand, so a peer advertising a future feature can
//! never hard-break this build (the regression suite pins that).  Feature
//! negotiation is capability-and-echo: a client sets a feature bit in its
//! [`Op::Hello`] request, and the server echoes the subset it will honour
//! in the response — a server that never saw the bit simply answers with it
//! clear and the session proceeds without the feature.  Bit 0 negotiates
//! the container-v3 per-frame `gld-lz` stage; bit 1 negotiates container-v4
//! shared entropy-model profiles.  Profile sessions receive v4 compress
//! responses, staged sessions v3, everything else stage-free v2 streams.
//!
//! The compress response body is a `GLDC` container exactly as
//! `Codec::compress_variable` would encode it; the decompress response body
//! is the decoded block tensors.  Codec negotiation happens in [`Op::Hello`]:
//! the client lists codec ids in preference order and the server answers
//! with the first one it has registered (or [`Status::NoCommonCodec`]).
//!
//! **Pipelining.**  The request id (bytes 16..24) is the multiplexing key:
//! a client may send any number of requests down one connection without
//! waiting, and the server answers each frame with its id echoed verbatim —
//! **in whatever order the work completes**.  Responses to a pipelined
//! stream are therefore matched by id, never by arrival order (the blocking
//! one-outstanding-request client keeps working unchanged, since with a
//! single id in flight order is vacuous).  Servers bound the number of
//! unanswered requests per connection and may rate-limit codec work with
//! [`Status::RateLimited`]; [`Op::Status`] exposes per-shard load so health
//! checks are first-class.  [`StreamParser`] is the incremental frame
//! assembler both ends use on a non-blocking stream.
//!
//! Every decoder in this module is panic-free on arbitrary input: malformed,
//! truncated or bit-flipped bytes surface as a typed [`ProtocolError`]
//! (`tests/protocol_fuzz.rs` and the cross-crate `service_end_to_end` suite
//! fuzz this promise).

use gld_core::container::{ByteReader, ContainerError};
use gld_core::ErrorTarget;
use gld_tensor::Tensor;
use std::fmt;
use std::io::{Read, Write};

/// Frame magic bytes ("GLD service").
pub const MAGIC: [u8; 4] = *b"GLDS";

/// Current protocol version.  Unknown versions are rejected on both sides.
pub const PROTOCOL_VERSION: u16 = 1;

/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 32;

/// Hard upper bound on a frame body (1 GiB).  A header declaring more is
/// rejected before any allocation; servers typically configure a lower
/// limit on top.
pub const MAX_BODY_LEN: u64 = 1 << 30;

/// Header feature bit (byte 9, bit 0): the sender understands the container
/// v3 per-frame lossless stage.  Set by stage-capable clients in `Hello`
/// requests and echoed by stage-capable servers when the session will use
/// v3 compress responses.
pub const EXT_CONTAINER_STAGE: u8 = 0b1;

/// Header feature bit (byte 9, bit 1): the sender understands container v4
/// shared entropy-model profiles.  Set by profile-capable clients in `Hello`
/// requests and echoed by profile-capable servers when the session will use
/// v4 compress responses (a shared coding profile fitted once per variable,
/// serving every frame warm).  Peers that predate the bit ignore it — the
/// session transparently downgrades to v3 (or v2) streams.
pub const EXT_SHARED_PROFILES: u8 = 0b10;

/// Header feature bit (byte 9, bit 2): the sender understands the
/// latency-summary extension of [`Op::Status`] responses.  A client sets it
/// on a `Status` *request*; a summary-capable server echoes the bit and
/// appends a [`StatusSummaries`] section (per-op request counts with p50/p99
/// latencies, sourced from the server's lock-free histograms) after the
/// shard table.  Peers that predate the bit ignore it and the response body
/// stays byte-identical to the legacy layout.
pub const EXT_STATUS_SUMMARIES: u8 = 0b100;

/// Frame operation, present in requests and echoed in responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Codec negotiation + server info.
    Hello = 1,
    /// Compress one variable; the response body is a `GLDC` container.
    Compress = 2,
    /// Decompress a `GLDC` container; the response body is the block tensors.
    Decompress = 3,
    /// Liveness probe with empty bodies.
    Ping = 4,
    /// Ask the server to drain in-flight work and exit.
    Shutdown = 5,
    /// Health/ops probe: empty request body, response body is a
    /// [`StatusResponse`] (service counters + per-shard load).
    Status = 6,
}

impl Op {
    /// Parses an op byte.
    pub fn from_u8(byte: u8) -> Result<Self, ProtocolError> {
        Ok(match byte {
            1 => Op::Hello,
            2 => Op::Compress,
            3 => Op::Decompress,
            4 => Op::Ping,
            5 => Op::Shutdown,
            6 => Op::Status,
            other => return Err(ProtocolError::UnknownOp(other)),
        })
    }
}

/// Response status code.  `Ok` responses carry the op's payload; every other
/// status carries a UTF-8 diagnostic message as the body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// The request's protocol version is not supported.
    UnsupportedVersion = 1,
    /// The request's op byte is not a known [`Op`].
    UnknownOp = 2,
    /// The frame header or body failed to parse.
    Malformed = 3,
    /// Hello negotiation found no codec both sides support.
    NoCommonCodec = 4,
    /// The requested codec id is not registered on this server.
    UnknownCodec = 5,
    /// A decompress body was not a valid `GLDC` container.
    BadContainer = 6,
    /// The request or response body exceeds the configured limit.
    FrameTooLarge = 7,
    /// The server is draining and no longer admits work.
    ShuttingDown = 8,
    /// The codec failed internally (the diagnostic names the failure).
    Internal = 9,
    /// The connection exceeded its admission budget (token bucket); the
    /// request was refused without being admitted.  Retry later — the
    /// connection itself stays healthy.
    RateLimited = 10,
    /// The request sat past its per-op execution deadline (`--op-deadline`)
    /// before a shard could finish it.  The work was abandoned or its
    /// result discarded; the connection stays healthy and the op is safe
    /// to retry (compress/decompress are pure).
    DeadlineExceeded = 11,
}

impl Status {
    /// Parses a status byte.
    pub fn from_u8(byte: u8) -> Result<Self, ProtocolError> {
        Ok(match byte {
            0 => Status::Ok,
            1 => Status::UnsupportedVersion,
            2 => Status::UnknownOp,
            3 => Status::Malformed,
            4 => Status::NoCommonCodec,
            5 => Status::UnknownCodec,
            6 => Status::BadContainer,
            7 => Status::FrameTooLarge,
            8 => Status::ShuttingDown,
            9 => Status::Internal,
            10 => Status::RateLimited,
            11 => Status::DeadlineExceeded,
            other => return Err(ProtocolError::UnknownStatus(other)),
        })
    }
}

/// Typed decode errors for `GLDS` frames and bodies.  The decoders never
/// panic: arbitrary input yields exactly one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's protocol version is not supported by this build.
    UnsupportedVersion(u16),
    /// The op byte is not a known [`Op`].
    UnknownOp(u8),
    /// The status byte is not a known [`Status`].
    UnknownStatus(u8),
    /// The codec id byte is not a known codec.
    UnknownCodec(u8),
    /// The declared body length exceeds the limit in force.
    BodyTooLarge {
        /// Length the header declared.
        declared: u64,
        /// Limit the decoder enforced.
        max: u64,
    },
    /// The input ended before the declared content.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after the declared content.
    TrailingBytes(usize),
    /// A body field violated its own invariants.
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(found) => {
                write!(f, "bad frame magic {found:?}, expected {MAGIC:?}")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v}, this build speaks {PROTOCOL_VERSION}"
                )
            }
            ProtocolError::UnknownOp(op) => write!(f, "unknown op byte {op}"),
            ProtocolError::UnknownStatus(s) => write!(f, "unknown status byte {s}"),
            ProtocolError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            ProtocolError::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds limit {max}")
            }
            ProtocolError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame body"),
            ProtocolError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ContainerError> for ProtocolError {
    fn from(e: ContainerError) -> Self {
        match e {
            ContainerError::Truncated { needed, available } => {
                ProtocolError::Truncated { needed, available }
            }
            ContainerError::TrailingBytes(n) => ProtocolError::TrailingBytes(n),
            ContainerError::UnknownCodec(id) => ProtocolError::UnknownCodec(id),
            _ => ProtocolError::Malformed("embedded container field"),
        }
    }
}

/// The status a server reports back for a request it could not decode.
pub fn status_for(error: &ProtocolError) -> Status {
    match error {
        ProtocolError::UnsupportedVersion(_) => Status::UnsupportedVersion,
        ProtocolError::UnknownOp(_) => Status::UnknownOp,
        ProtocolError::UnknownCodec(_) => Status::UnknownCodec,
        ProtocolError::BodyTooLarge { .. } => Status::FrameTooLarge,
        _ => Status::Malformed,
    }
}

/// A decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame operation.
    pub op: Op,
    /// Codec id byte (0 = none / session default).
    pub codec: u8,
    /// Status byte (0 in requests).
    pub status: Status,
    /// Feature bits (header byte 9); unknown bits are ignored on decode.
    pub ext: u8,
    /// Request id, echoed verbatim in the response.
    pub request_id: u64,
    /// Declared body length in bytes.
    pub body_len: u64,
}

impl FrameHeader {
    /// A request header (status `Ok`, no feature bits).
    pub fn request(op: Op, codec: u8, request_id: u64, body_len: u64) -> Self {
        FrameHeader {
            op,
            codec,
            status: Status::Ok,
            ext: 0,
            request_id,
            body_len,
        }
    }

    /// A response header echoing `op` and `request_id` (no feature bits).
    pub fn response(op: Op, codec: u8, status: Status, request_id: u64, body_len: u64) -> Self {
        FrameHeader {
            op,
            codec,
            status,
            ext: 0,
            request_id,
            body_len,
        }
    }

    /// The same header with the given feature bits (header byte 9).
    pub fn with_ext(mut self, ext: u8) -> Self {
        self.ext = ext;
        self
    }

    /// Serialises the header to its 32-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out[6] = self.op as u8;
        out[7] = self.codec;
        out[8] = self.status as u8;
        out[9] = self.ext;
        // bytes 10..16 reserved, written zero, ignored on decode
        out[16..24].copy_from_slice(&self.request_id.to_le_bytes());
        out[24..32].copy_from_slice(&self.body_len.to_le_bytes());
        out
    }

    /// Parses a 32-byte header, validating magic, version, op, status and
    /// the body-length hard cap ([`MAX_BODY_LEN`]); feature bits pass
    /// through and reserved bytes are ignored.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, ProtocolError> {
        RawFrameHeader::decode(bytes)?.validate()
    }
}

/// A header whose framing fields (magic, version, reserved bytes, body
/// length) validated but whose op/status/codec bytes are still raw.
///
/// Servers read this first: a framing failure means the stream position can
/// no longer be trusted and the connection must close, while an unknown op
/// or status still tells the reader exactly how many body bytes to consume —
/// so it can skip them, answer with a typed error status, and keep serving
/// the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawFrameHeader {
    /// Unvalidated op byte.
    pub op: u8,
    /// Codec id byte.
    pub codec: u8,
    /// Unvalidated status byte.
    pub status: u8,
    /// Feature bits (header byte 9); unknown bits are ignored.
    pub ext: u8,
    /// Request id.
    pub request_id: u64,
    /// Declared body length (already under [`MAX_BODY_LEN`]).
    pub body_len: u64,
}

impl RawFrameHeader {
    /// Validates the framing fields only.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, ProtocolError> {
        let magic: [u8; 4] = bytes[0..4].try_into().expect("fixed slice");
        if magic != MAGIC {
            return Err(ProtocolError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("fixed slice"));
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::UnsupportedVersion(version));
        }
        // Bytes 9..16 are negotiation headroom: byte 9 carries feature
        // bits (unknown ones ignored), bytes 10..15 are ignored entirely —
        // a peer advertising a future feature must never hard-break this
        // decoder.
        let body_len = u64::from_le_bytes(bytes[24..32].try_into().expect("fixed slice"));
        if body_len > MAX_BODY_LEN {
            return Err(ProtocolError::BodyTooLarge {
                declared: body_len,
                max: MAX_BODY_LEN,
            });
        }
        Ok(RawFrameHeader {
            op: bytes[6],
            codec: bytes[7],
            status: bytes[8],
            ext: bytes[9],
            request_id: u64::from_le_bytes(bytes[16..24].try_into().expect("fixed slice")),
            body_len,
        })
    }

    /// Validates the op and status bytes, yielding a typed header.
    pub fn validate(self) -> Result<FrameHeader, ProtocolError> {
        Ok(FrameHeader {
            op: Op::from_u8(self.op)?,
            codec: self.codec,
            status: Status::from_u8(self.status)?,
            ext: self.ext,
            request_id: self.request_id,
            body_len: self.body_len,
        })
    }
}

/// Encodes one complete frame (header + body) to bytes.
pub fn encode_frame(header: &FrameHeader, body: &[u8]) -> Vec<u8> {
    debug_assert_eq!(header.body_len, body.len() as u64);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(body);
    out
}

/// Parses one complete frame from a byte slice, rejecting truncation and
/// trailing bytes.  This is the fuzz surface: it never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let header_bytes: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("fixed slice");
    let header = FrameHeader::decode(header_bytes)?;
    // The cap in `FrameHeader::decode` keeps this cast from overflowing.
    let body_len = header.body_len as usize;
    let available = bytes.len() - HEADER_LEN;
    if available < body_len {
        return Err(ProtocolError::Truncated {
            needed: HEADER_LEN.saturating_add(body_len),
            available: bytes.len(),
        });
    }
    if available > body_len {
        return Err(ProtocolError::TrailingBytes(available - body_len));
    }
    Ok((header, &bytes[HEADER_LEN..HEADER_LEN + body_len]))
}

/// Writes one frame to a blocking stream.
pub fn write_frame<W: Write>(
    writer: &mut W,
    header: &FrameHeader,
    body: &[u8],
) -> std::io::Result<()> {
    writer.write_all(&header.encode())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Reads one frame from a blocking stream, enforcing `max_body` on top of
/// the protocol hard cap.  I/O failures surface in the outer `Result`,
/// protocol violations in the inner one.
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_body: u64,
) -> std::io::Result<Result<(FrameHeader, Vec<u8>), ProtocolError>> {
    let mut header_bytes = [0u8; HEADER_LEN];
    reader.read_exact(&mut header_bytes)?;
    let header = match FrameHeader::decode(&header_bytes) {
        Ok(h) => h,
        Err(e) => return Ok(Err(e)),
    };
    if header.body_len > max_body {
        return Ok(Err(ProtocolError::BodyTooLarge {
            declared: header.body_len,
            max: max_body,
        }));
    }
    // Grow the buffer as bytes actually arrive (`take` + `read_to_end`
    // reserves adaptively): a peer declaring a huge body but never sending
    // it cannot force an up-front allocation of the declared size.
    let mut body = Vec::new();
    reader
        .by_ref()
        .take(header.body_len)
        .read_to_end(&mut body)?;
    if (body.len() as u64) < header.body_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream ended inside a frame body",
        ));
    }
    Ok(Ok((header, body)))
}

/// Bounds-checked body reader with protocol-typed errors (a thin shim over
/// the container crate's [`ByteReader`]).
struct BodyReader<'a> {
    inner: ByteReader<'a>,
}

impl<'a> BodyReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BodyReader {
            inner: ByteReader::new(bytes),
        }
    }

    fn remaining(&self) -> usize {
        self.inner.remaining()
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        Ok(self.inner.take(len)?)
    }

    fn read_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.inner.read_u8()?)
    }

    fn read_u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(self.inner.read_u16()?)
    }

    fn read_u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(self.inner.read_u32()?)
    }

    fn read_u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(self.inner.read_u64()?)
    }

    fn read_f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(self.inner.read_f32()?)
    }

    fn expect_end(&self) -> Result<(), ProtocolError> {
        Ok(self.inner.expect_end()?)
    }
}

/// Reads a `u16` length-prefixed UTF-8 key.
fn read_key(reader: &mut BodyReader<'_>) -> Result<String, ProtocolError> {
    let len = reader.read_u16()? as usize;
    let bytes = reader.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("key is not UTF-8"))
}

/// Appends a `u16` length-prefixed UTF-8 key.
fn write_key(out: &mut Vec<u8>, key: &str) {
    debug_assert!(key.len() <= u16::MAX as usize, "key longer than 64 KiB");
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
}

/// Wire form of an [`ErrorTarget`] option: kind byte 0 (none), 1 (NRMSE) or
/// 2 (point-wise absolute), followed by the `f32` bound for kinds 1 and 2.
fn write_target(out: &mut Vec<u8>, target: Option<ErrorTarget>) {
    match target {
        None => out.push(0),
        Some(ErrorTarget::Nrmse(t)) => {
            out.push(1);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Some(ErrorTarget::PointwiseAbs(t)) => {
            out.push(2);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn read_target(reader: &mut BodyReader<'_>) -> Result<Option<ErrorTarget>, ProtocolError> {
    let kind = reader.read_u8()?;
    if kind == 0 {
        return Ok(None);
    }
    let value = reader.read_f32()?;
    if !value.is_finite() || value <= 0.0 {
        return Err(ProtocolError::Malformed(
            "error-bound target must be finite and positive",
        ));
    }
    match kind {
        1 => Ok(Some(ErrorTarget::Nrmse(value))),
        2 => Ok(Some(ErrorTarget::PointwiseAbs(value))),
        _ => Err(ProtocolError::Malformed("unknown error-target kind")),
    }
}

/// A parsed [`Op::Compress`] request body.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressRequest {
    /// Variable key — the shard-routing input.
    pub key: String,
    /// Temporal window length (frames per block).
    pub block_frames: u32,
    /// Optional reconstruction-quality target.
    pub target: Option<ErrorTarget>,
    /// Variable dimensions `[timesteps, height, width]`.
    pub dims: [u32; 3],
    /// Row-major `f32` frame data, `dims` product values.
    pub data: Vec<f32>,
}

/// Serialises a compress-request body from borrowed frame data — the
/// clients' entry point, so a variable's `f32` buffer is serialised
/// straight into the wire body without an intermediate owned copy.
pub fn encode_compress_body(
    key: &str,
    block_frames: u32,
    target: Option<ErrorTarget>,
    dims: [u32; 3],
    data: &[f32],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + key.len() + data.len() * 4);
    write_key(&mut out, key);
    out.extend_from_slice(&block_frames.to_le_bytes());
    write_target(&mut out, target);
    for d in dims {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

impl CompressRequest {
    /// Serialises the request body.
    pub fn encode_body(&self) -> Vec<u8> {
        encode_compress_body(
            &self.key,
            self.block_frames,
            self.target,
            self.dims,
            &self.data,
        )
    }

    /// Parses a request body, validating every field before any sized
    /// allocation.
    pub fn decode_body(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut reader = BodyReader::new(bytes);
        let key = read_key(&mut reader)?;
        let block_frames = reader.read_u32()?;
        if block_frames == 0 {
            return Err(ProtocolError::Malformed("block_frames must be at least 1"));
        }
        let target = read_target(&mut reader)?;
        let dims = [reader.read_u32()?, reader.read_u32()?, reader.read_u32()?];
        if dims.contains(&0) {
            return Err(ProtocolError::Malformed("zero-sized dimension"));
        }
        let numel = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(u64::from(d)))
            .ok_or(ProtocolError::Malformed("dimension product overflows"))?;
        let declared = numel
            .checked_mul(4)
            .ok_or(ProtocolError::Malformed("payload size overflows"))?;
        let remaining = reader.remaining() as u64;
        let consumed = bytes.len() - reader.remaining();
        if declared > remaining {
            return Err(ProtocolError::Truncated {
                needed: (consumed as u64)
                    .saturating_add(declared)
                    .min(usize::MAX as u64) as usize,
                available: bytes.len(),
            });
        }
        if declared < remaining {
            return Err(ProtocolError::TrailingBytes(
                (remaining - declared) as usize,
            ));
        }
        let mut data = Vec::with_capacity(numel as usize);
        for chunk in reader.take(declared as usize)?.chunks_exact(4) {
            data.push(f32::from_le_bytes(chunk.try_into().expect("fixed chunk")));
        }
        reader.expect_end()?;
        Ok(CompressRequest {
            key,
            block_frames,
            target,
            dims,
            data,
        })
    }
}

/// A parsed [`Op::Decompress`] request body: the routing key plus the
/// `GLDC` container to decode (left as raw bytes here — container
/// validation is the server's job and yields [`Status::BadContainer`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecompressRequest {
    /// Variable key — the shard-routing input.
    pub key: String,
    /// The encoded `GLDC` container.
    pub container: Vec<u8>,
}

impl DecompressRequest {
    /// Serialises the request body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.key.len() + self.container.len());
        write_key(&mut out, &self.key);
        out.extend_from_slice(&self.container);
        out
    }

    /// Parses a request body.
    pub fn decode_body(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut reader = BodyReader::new(bytes);
        let key = read_key(&mut reader)?;
        let container = reader.take(reader.remaining())?.to_vec();
        Ok(DecompressRequest { key, container })
    }
}

/// A parsed [`Op::Hello`] request body: codec ids in preference order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloRequest {
    /// Proposed codec id bytes, most preferred first.
    pub proposals: Vec<u8>,
}

impl HelloRequest {
    /// Serialises the request body.
    pub fn encode_body(&self) -> Vec<u8> {
        debug_assert!(self.proposals.len() <= u8::MAX as usize);
        let mut out = Vec::with_capacity(1 + self.proposals.len());
        out.push(self.proposals.len() as u8);
        out.extend_from_slice(&self.proposals);
        out
    }

    /// Parses a request body.
    pub fn decode_body(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut reader = BodyReader::new(bytes);
        let count = reader.read_u8()? as usize;
        if count == 0 {
            return Err(ProtocolError::Malformed("hello proposes no codecs"));
        }
        let proposals = reader.take(count)?.to_vec();
        reader.expect_end()?;
        Ok(HelloRequest { proposals })
    }
}

/// The server-info payload of an `Ok` [`Op::Hello`] response (the chosen
/// codec id rides in the response header's codec byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloResponse {
    /// Number of shards the server routes across.
    pub shards: u32,
    /// Per-shard bounded in-flight request window.
    pub shard_window: u32,
    /// Streaming-executor queue depth per compress call.
    pub queue_depth: u32,
}

impl HelloResponse {
    /// Serialises the response body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.shard_window.to_le_bytes());
        out.extend_from_slice(&self.queue_depth.to_le_bytes());
        out
    }

    /// Parses a response body.
    pub fn decode_body(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut reader = BodyReader::new(bytes);
        let shards = reader.read_u32()?;
        let shard_window = reader.read_u32()?;
        let queue_depth = reader.read_u32()?;
        reader.expect_end()?;
        Ok(HelloResponse {
            shards,
            shard_window,
            queue_depth,
        })
    }
}

/// Per-shard load counters in an [`Op::Status`] response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatus {
    /// Requests admitted to the shard and not yet completed.
    pub in_flight: u64,
    /// High-water mark of `in_flight` (bounded by the shard window).
    pub peak_in_flight: u64,
    /// Requests ever admitted.
    pub admitted: u64,
    /// Requests completed (including ones whose connection died first).
    pub completed: u64,
    /// Compressed blocks produced by this shard.
    pub blocks: u64,
    /// High-water mark of blocks resident in a streaming compress call.
    pub peak_resident_blocks: u64,
    /// Request payload bytes admitted.
    pub bytes_in: u64,
    /// Response payload bytes produced.
    pub bytes_out: u64,
}

/// Per-op latency summary in the [`EXT_STATUS_SUMMARIES`] section of a
/// [`StatusResponse`]: the op byte, how many requests of that op the
/// server's histogram has recorded, and its p50/p99 estimates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpLatency {
    /// The [`Op`] byte this row summarises.
    pub op: u8,
    /// Requests of this op recorded since process start.
    pub count: u64,
    /// Median server-side latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile server-side latency in nanoseconds.
    pub p99_ns: u64,
}

/// The negotiated trailer of a [`StatusResponse`]: present only when the
/// client set [`EXT_STATUS_SUMMARIES`] on its `Status` request and the
/// server echoed the bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusSummaries {
    /// Requests refused for reasons other than rate limiting or deadline
    /// expiry (malformed frames, oversized bodies, drain refusals, ...).
    /// Together with the top-level counters the invariant is
    /// `requests_rejected == rate_limited + deadlines_exceeded + rejected_other`.
    pub rejected_other: u64,
    /// Per-op latency rows, one per op the server has served at least once.
    pub ops: Vec<OpLatency>,
}

impl StatusSummaries {
    /// The summary row for `op`, if the server has served it.
    pub fn op(&self, op: Op) -> Option<&OpLatency> {
        self.ops.iter().find(|row| row.op == op as u8)
    }
}

/// The payload of an `Ok` [`Op::Status`] response: service-wide counters
/// plus one [`ShardStatus`] per shard, and — when the request negotiated
/// [`EXT_STATUS_SUMMARIES`] — per-op latency summaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusResponse {
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections ever accepted.
    pub connections_opened: u64,
    /// Requests refused with a typed error status before admission; always
    /// equal to `rate_limited + deadlines_exceeded + rejected_other`.
    pub requests_rejected: u64,
    /// Requests refused with [`Status::RateLimited`] specifically.
    pub rate_limited: u64,
    /// Requests answered with [`Status::DeadlineExceeded`].
    pub deadlines_exceeded: u64,
    /// Idle connections closed by the `--idle-timeout` reaper.
    pub reaped_idle: u64,
    /// Faults fired by the `GLD_FAILPOINTS` injection registry since
    /// process start (0 in normal operation).
    pub faults_injected: u64,
    /// Per-shard load, indexed by shard.
    pub shards: Vec<ShardStatus>,
    /// Latency summaries (`None` unless the session negotiated
    /// [`EXT_STATUS_SUMMARIES`]).
    pub summaries: Option<StatusSummaries>,
}

impl StatusResponse {
    /// Serialises the response body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(60 + self.shards.len() * 64);
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.connections_active.to_le_bytes());
        out.extend_from_slice(&self.connections_opened.to_le_bytes());
        out.extend_from_slice(&self.requests_rejected.to_le_bytes());
        out.extend_from_slice(&self.rate_limited.to_le_bytes());
        out.extend_from_slice(&self.deadlines_exceeded.to_le_bytes());
        out.extend_from_slice(&self.reaped_idle.to_le_bytes());
        out.extend_from_slice(&self.faults_injected.to_le_bytes());
        for shard in &self.shards {
            for field in [
                shard.in_flight,
                shard.peak_in_flight,
                shard.admitted,
                shard.completed,
                shard.blocks,
                shard.peak_resident_blocks,
                shard.bytes_in,
                shard.bytes_out,
            ] {
                out.extend_from_slice(&field.to_le_bytes());
            }
        }
        if let Some(summaries) = &self.summaries {
            out.extend_from_slice(&summaries.rejected_other.to_le_bytes());
            out.extend_from_slice(&(summaries.ops.len() as u32).to_le_bytes());
            for row in &summaries.ops {
                out.push(row.op);
                out.extend_from_slice(&row.count.to_le_bytes());
                out.extend_from_slice(&row.p50_ns.to_le_bytes());
                out.extend_from_slice(&row.p99_ns.to_le_bytes());
            }
        }
        out
    }

    /// Parses a response body.  The shard count is validated against the
    /// bytes actually present before any allocation.  Bytes remaining after
    /// the shard table are parsed as the [`EXT_STATUS_SUMMARIES`] trailer;
    /// a legacy body ending at the shard table decodes with
    /// `summaries: None`.
    pub fn decode_body(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut reader = BodyReader::new(bytes);
        let count = reader.read_u32()? as usize;
        let connections_active = reader.read_u64()?;
        let connections_opened = reader.read_u64()?;
        let requests_rejected = reader.read_u64()?;
        let rate_limited = reader.read_u64()?;
        let deadlines_exceeded = reader.read_u64()?;
        let reaped_idle = reader.read_u64()?;
        let faults_injected = reader.read_u64()?;
        match count.checked_mul(64) {
            Some(table) if table <= reader.remaining() => {}
            _ => {
                return Err(ProtocolError::Malformed(
                    "status shard table does not match its declared count",
                ))
            }
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            shards.push(ShardStatus {
                in_flight: reader.read_u64()?,
                peak_in_flight: reader.read_u64()?,
                admitted: reader.read_u64()?,
                completed: reader.read_u64()?,
                blocks: reader.read_u64()?,
                peak_resident_blocks: reader.read_u64()?,
                bytes_in: reader.read_u64()?,
                bytes_out: reader.read_u64()?,
            });
        }
        let summaries = if reader.remaining() > 0 {
            let rejected_other = reader.read_u64()?;
            let n_ops = reader.read_u32()? as usize;
            // 25 bytes per row: op byte + three u64 fields.
            if n_ops.checked_mul(25) != Some(reader.remaining()) {
                return Err(ProtocolError::Malformed(
                    "status summary table does not match its declared count",
                ));
            }
            let mut ops = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                ops.push(OpLatency {
                    op: reader.read_u8()?,
                    count: reader.read_u64()?,
                    p50_ns: reader.read_u64()?,
                    p99_ns: reader.read_u64()?,
                });
            }
            Some(StatusSummaries {
                rejected_other,
                ops,
            })
        } else {
            None
        };
        reader.expect_end()?;
        Ok(StatusResponse {
            connections_active,
            connections_opened,
            requests_rejected,
            rate_limited,
            deadlines_exceeded,
            reaped_idle,
            faults_injected,
            shards,
            summaries,
        })
    }
}

/// One step of [`StreamParser::next_event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// A complete frame: framing-validated header (op/status/codec bytes
    /// still raw — see [`RawFrameHeader::validate`]) plus its body.
    Frame(RawFrameHeader, Vec<u8>),
    /// More bytes are needed before the next frame completes.
    Incomplete,
    /// An unrecoverable framing violation: the stream position can no longer
    /// be trusted, so the connection must close after a best-effort error
    /// response.  `request_id` is the offending frame's id when the header
    /// parsed far enough to recover it, else 0.  The parser is poisoned —
    /// every subsequent call repeats this event.
    Fatal {
        /// What broke.
        error: ProtocolError,
        /// Best-effort id for the error response (0 if unrecoverable).
        request_id: u64,
    },
}

/// Incremental `GLDS` frame assembler for non-blocking streams.
///
/// Bytes arrive in arbitrary slices via [`push`](StreamParser::push) —
/// split anywhere, including mid-header and mid-body — and complete frames
/// come out of [`next_event`](StreamParser::next_event) in order.  The
/// buffer grows only as bytes actually arrive, so a header declaring a huge
/// body costs nothing until the peer really sends it; a body over `max_body`
/// is refused as soon as the header is readable.  Framing violations poison
/// the parser (see [`StreamEvent::Fatal`]): after garbage there is no way to
/// know where the next frame starts, so resynchronisation is never
/// attempted.  Never panics on arbitrary input.
#[derive(Debug)]
pub struct StreamParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it dominates the buffer.
    start: usize,
    max_body: u64,
    poisoned: Option<(ProtocolError, u64)>,
}

impl StreamParser {
    /// A parser enforcing `max_body` (capped at [`MAX_BODY_LEN`]) per frame.
    pub fn new(max_body: u64) -> Self {
        StreamParser {
            buf: Vec::new(),
            start: 0,
            max_body: max_body.min(MAX_BODY_LEN),
            poisoned: None,
        }
    }

    /// Appends newly received bytes.  Ignored once the parser is poisoned.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, if the buffer holds one.
    pub fn next_event(&mut self) -> StreamEvent {
        if let Some((error, request_id)) = &self.poisoned {
            return StreamEvent::Fatal {
                error: error.clone(),
                request_id: *request_id,
            };
        }
        if self.buffered() < HEADER_LEN {
            return StreamEvent::Incomplete;
        }
        let header_bytes: &[u8; HEADER_LEN] = self.buf[self.start..self.start + HEADER_LEN]
            .try_into()
            .expect("fixed slice");
        let raw = match RawFrameHeader::decode(header_bytes) {
            Ok(raw) => raw,
            Err(error) => {
                // Bytes 16..24 are the id — recoverable iff the magic and
                // version already validated (BodyTooLarge is the only
                // decode error past that point).
                let request_id = if matches!(error, ProtocolError::BodyTooLarge { .. }) {
                    u64::from_le_bytes(header_bytes[16..24].try_into().expect("fixed slice"))
                } else {
                    0
                };
                return self.poison(error, request_id);
            }
        };
        if raw.body_len > self.max_body {
            let error = ProtocolError::BodyTooLarge {
                declared: raw.body_len,
                max: self.max_body,
            };
            return self.poison(error, raw.request_id);
        }
        let frame_len = HEADER_LEN + raw.body_len as usize;
        if self.buffered() < frame_len {
            return StreamEvent::Incomplete;
        }
        let body = self.buf[self.start + HEADER_LEN..self.start + frame_len].to_vec();
        self.start += frame_len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        StreamEvent::Frame(raw, body)
    }

    fn poison(&mut self, error: ProtocolError, request_id: u64) -> StreamEvent {
        self.poisoned = Some((error.clone(), request_id));
        self.buf = Vec::new();
        self.start = 0;
        StreamEvent::Fatal { error, request_id }
    }
}

/// Serialises decompressed blocks as a decompress-response body: block count
/// then, per block, `[n, h, w]` dims and the row-major `f32` data.
pub fn encode_blocks_body(blocks: &[Tensor]) -> Vec<u8> {
    let payload: usize = blocks.iter().map(|b| 12 + b.numel() * 4).sum();
    let mut out = Vec::with_capacity(4 + payload);
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for block in blocks {
        debug_assert_eq!(block.rank(), 3, "decompressed blocks are [N, H, W]");
        for axis in 0..3 {
            out.extend_from_slice(&(block.dim(axis) as u32).to_le_bytes());
        }
        for v in block.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Parses a decompress-response body back into block tensors.  Sizes are
/// validated against the available bytes before any allocation, so a
/// corrupt count or dimension cannot trigger a huge reservation.
pub fn decode_blocks_body(bytes: &[u8]) -> Result<Vec<Tensor>, ProtocolError> {
    let mut reader = BodyReader::new(bytes);
    let count = reader.read_u32()? as usize;
    let mut blocks = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let dims = [
            reader.read_u32()? as usize,
            reader.read_u32()? as usize,
            reader.read_u32()? as usize,
        ];
        if dims.contains(&0) {
            return Err(ProtocolError::Malformed("zero-sized block dimension"));
        }
        let numel = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .ok_or(ProtocolError::Malformed(
                "block dimension product overflows",
            ))?;
        let byte_len = numel
            .checked_mul(4)
            .ok_or(ProtocolError::Malformed("block byte size overflows"))?;
        if byte_len > reader.remaining() as u64 {
            let consumed = bytes.len() - reader.remaining();
            return Err(ProtocolError::Truncated {
                needed: (consumed as u64)
                    .saturating_add(byte_len)
                    .min(usize::MAX as u64) as usize,
                available: bytes.len(),
            });
        }
        let mut data = Vec::with_capacity(numel as usize);
        for chunk in reader.take(byte_len as usize)?.chunks_exact(4) {
            data.push(f32::from_le_bytes(chunk.try_into().expect("fixed chunk")));
        }
        blocks.push(Tensor::from_vec(data, &dims));
    }
    reader.expect_end()?;
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let header = FrameHeader::request(Op::Compress, 2, 0xDEAD_BEEF, 123);
        let decoded = FrameHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded, header);

        let response = FrameHeader::response(Op::Compress, 2, Status::FrameTooLarge, 7, 0);
        assert_eq!(FrameHeader::decode(&response.encode()).unwrap(), response);
    }

    #[test]
    fn header_rejects_each_invalid_field() {
        let good = FrameHeader::request(Op::Ping, 0, 1, 0).encode();

        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(
            FrameHeader::decode(&bad),
            Err(ProtocolError::BadMagic(_))
        ));

        let mut bad = good;
        bad[4] = 0xEE;
        assert!(matches!(
            FrameHeader::decode(&bad),
            Err(ProtocolError::UnsupportedVersion(_))
        ));

        let mut bad = good;
        bad[6] = 0;
        assert_eq!(FrameHeader::decode(&bad), Err(ProtocolError::UnknownOp(0)));

        let mut bad = good;
        bad[8] = 0xFF;
        assert_eq!(
            FrameHeader::decode(&bad),
            Err(ProtocolError::UnknownStatus(0xFF))
        );

        let mut bad = good;
        bad[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            FrameHeader::decode(&bad),
            Err(ProtocolError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_reserved_bits_are_ignored_not_rejected() {
        // The regression the stage-negotiation bit depends on: a peer
        // setting feature or reserved bits this build does not know must
        // still decode (previously any non-zero reserved byte hard-closed
        // the connection, which would have made every future negotiation
        // bit a breaking change).
        let good = FrameHeader::request(Op::Ping, 0, 1, 0).encode();
        for at in 9..16 {
            let mut future = good;
            future[at] = 0xFF;
            let decoded = FrameHeader::decode(&future).expect("future bits must decode");
            assert_eq!(decoded.op, Op::Ping);
            if at == 9 {
                assert_eq!(decoded.ext, 0xFF, "feature bits pass through");
            }
        }

        // Known feature bits round-trip through encode/decode.
        let header = FrameHeader::request(Op::Hello, 0, 7, 0).with_ext(EXT_CONTAINER_STAGE | 0b100);
        let decoded = FrameHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.ext & EXT_CONTAINER_STAGE, EXT_CONTAINER_STAGE);
    }

    #[test]
    fn whole_frames_reject_truncation_and_trailing_bytes() {
        let header = FrameHeader::request(Op::Hello, 0, 9, 3);
        let frame = encode_frame(&header, &[1, 2, 3]);
        let (decoded, body) = decode_frame(&frame).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(body, &[1, 2, 3]);

        for cut in [0, 5, HEADER_LEN - 1, HEADER_LEN + 1] {
            assert!(
                matches!(
                    decode_frame(&frame[..cut]),
                    Err(ProtocolError::Truncated { .. })
                ),
                "cut at {cut} not detected"
            );
        }
        let mut long = frame.clone();
        long.push(0);
        assert_eq!(decode_frame(&long), Err(ProtocolError::TrailingBytes(1)));
    }

    #[test]
    fn compress_request_roundtrips() {
        for target in [
            None,
            Some(ErrorTarget::Nrmse(1e-2)),
            Some(ErrorTarget::PointwiseAbs(0.5)),
        ] {
            let request = CompressRequest {
                key: "temperature".into(),
                block_frames: 8,
                target,
                dims: [16, 4, 4],
                data: (0..16 * 4 * 4).map(|i| i as f32 * 0.25).collect(),
            };
            let body = request.encode_body();
            assert_eq!(CompressRequest::decode_body(&body).unwrap(), request);
        }
    }

    #[test]
    fn compress_request_rejects_inconsistent_payloads() {
        let request = CompressRequest {
            key: "k".into(),
            block_frames: 4,
            target: None,
            dims: [8, 2, 2],
            data: vec![0.0; 32],
        };
        let good = request.encode_body();

        // Truncated payload.
        assert!(CompressRequest::decode_body(&good[..good.len() - 1]).is_err());
        // Extra payload.
        let mut long = good.clone();
        long.push(0);
        assert!(CompressRequest::decode_body(&long).is_err());
        // Zero dimension.
        let mut zero_dim = request.clone();
        zero_dim.dims = [0, 2, 2];
        let body = zero_dim.encode_body();
        assert_eq!(
            CompressRequest::decode_body(&body),
            Err(ProtocolError::Malformed("zero-sized dimension"))
        );
        // Absurd dimensions must error before allocating.
        let mut huge = good.clone();
        let dims_at = good.len() - 32 * 4 - 12;
        huge[dims_at..dims_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        huge[dims_at + 4..dims_at + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(CompressRequest::decode_body(&huge).is_err());
        // Non-finite error bound.
        let mut nan_target = request.clone();
        nan_target.target = Some(ErrorTarget::Nrmse(f32::NAN));
        let body = nan_target.encode_body();
        assert!(CompressRequest::decode_body(&body).is_err());
    }

    #[test]
    fn hello_and_decompress_bodies_roundtrip() {
        let hello = HelloRequest {
            proposals: vec![2, 3, 1],
        };
        assert_eq!(
            HelloRequest::decode_body(&hello.encode_body()).unwrap(),
            hello
        );
        assert!(HelloRequest::decode_body(&[0]).is_err(), "empty proposal");

        let info = HelloResponse {
            shards: 4,
            shard_window: 2,
            queue_depth: 8,
        };
        assert_eq!(
            HelloResponse::decode_body(&info.encode_body()).unwrap(),
            info
        );

        let request = DecompressRequest {
            key: "v".into(),
            container: vec![9, 8, 7],
        };
        assert_eq!(
            DecompressRequest::decode_body(&request.encode_body()).unwrap(),
            request
        );
    }

    #[test]
    fn blocks_body_roundtrips_and_rejects_huge_counts() {
        let blocks = vec![
            Tensor::arange(2 * 3 * 4).reshape(&[2, 3, 4]),
            Tensor::ones(&[1, 2, 2]),
        ];
        let body = encode_blocks_body(&blocks);
        let back = decode_blocks_body(&body).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in back.iter().zip(&blocks) {
            assert_eq!(a.dims(), b.dims());
            assert_eq!(a.data(), b.data());
        }

        // A corrupt count cannot trigger a huge allocation: it errors out.
        let mut corrupt = body.clone();
        corrupt[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_blocks_body(&corrupt).is_err());
        // Nor can corrupt block dims.
        let mut corrupt = body;
        corrupt[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_blocks_body(&corrupt).is_err());
    }

    #[test]
    fn status_response_roundtrips_and_rejects_bad_counts() {
        let status = StatusResponse {
            connections_active: 3,
            connections_opened: 41,
            requests_rejected: 2,
            rate_limited: 1,
            deadlines_exceeded: 4,
            reaped_idle: 6,
            faults_injected: 17,
            shards: vec![
                ShardStatus {
                    in_flight: 1,
                    peak_in_flight: 2,
                    admitted: 10,
                    completed: 9,
                    blocks: 40,
                    peak_resident_blocks: 8,
                    bytes_in: 1 << 20,
                    bytes_out: 1 << 18,
                },
                ShardStatus::default(),
            ],
            summaries: None,
        };
        let body = status.encode_body();
        assert_eq!(StatusResponse::decode_body(&body).unwrap(), status);

        // A corrupt shard count cannot trigger a huge allocation.
        let mut corrupt = body.clone();
        corrupt[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(StatusResponse::decode_body(&corrupt).is_err());
        assert!(StatusResponse::decode_body(&body[..body.len() - 1]).is_err());

        // The negotiated summaries trailer round-trips, and truncating it
        // is detected rather than misparsed as a legacy body.
        let mut with_summaries = status.clone();
        with_summaries.summaries = Some(StatusSummaries {
            rejected_other: 7,
            ops: vec![
                OpLatency {
                    op: Op::Compress as u8,
                    count: 100,
                    p50_ns: 1_000_000,
                    p99_ns: 9_000_000,
                },
                OpLatency {
                    op: Op::Ping as u8,
                    count: 12,
                    p50_ns: 800,
                    p99_ns: 3_000,
                },
            ],
        });
        let body = with_summaries.encode_body();
        let decoded = StatusResponse::decode_body(&body).unwrap();
        assert_eq!(decoded, with_summaries);
        let summaries = decoded.summaries.unwrap();
        assert_eq!(summaries.op(Op::Compress).unwrap().count, 100);
        assert!(summaries.op(Op::Shutdown).is_none());
        assert!(StatusResponse::decode_body(&body[..body.len() - 1]).is_err());
    }

    #[test]
    fn stream_parser_reassembles_frames_split_anywhere() {
        let frames = [
            encode_frame(&FrameHeader::request(Op::Ping, 0, 7, 0), &[]),
            encode_frame(
                &FrameHeader::request(Op::Compress, 2, 9, 5),
                &[1, 2, 3, 4, 5],
            ),
            encode_frame(
                &FrameHeader::response(Op::Status, 0, Status::RateLimited, 7, 2),
                &[8, 9],
            ),
        ];
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();

        // One byte at a time: every split boundary exercised.
        let mut parser = StreamParser::new(MAX_BODY_LEN);
        let mut out = Vec::new();
        for byte in &stream {
            parser.push(std::slice::from_ref(byte));
            loop {
                match parser.next_event() {
                    StreamEvent::Frame(raw, body) => out.push((raw, body)),
                    StreamEvent::Incomplete => break,
                    StreamEvent::Fatal { error, .. } => panic!("unexpected fatal: {error}"),
                }
            }
        }
        assert_eq!(out.len(), 3);
        for (frame, (raw, body)) in frames.iter().zip(&out) {
            let reencoded = encode_frame(&raw.validate().unwrap().with_ext(raw.ext), body);
            assert_eq!(&reencoded, frame);
        }
        assert_eq!(parser.buffered(), 0);

        // The whole stream in one push parses identically.
        let mut parser = StreamParser::new(MAX_BODY_LEN);
        parser.push(&stream);
        let mut all_at_once = Vec::new();
        while let StreamEvent::Frame(raw, body) = parser.next_event() {
            all_at_once.push((raw, body));
        }
        assert_eq!(all_at_once, out);
    }

    #[test]
    fn stream_parser_poisons_on_garbage_and_stays_poisoned() {
        let good = encode_frame(&FrameHeader::request(Op::Ping, 0, 3, 0), &[]);
        let mut parser = StreamParser::new(MAX_BODY_LEN);
        parser.push(&good);
        parser.push(b"and now thirty-two bytes of junk!");
        assert!(matches!(parser.next_event(), StreamEvent::Frame(raw, _) if raw.request_id == 3));
        let fatal = parser.next_event();
        assert!(
            matches!(
                fatal,
                StreamEvent::Fatal {
                    error: ProtocolError::BadMagic(_),
                    request_id: 0,
                }
            ),
            "got {fatal:?}"
        );
        // Poisoned: further pushes are ignored, the event repeats.
        parser.push(&good);
        assert_eq!(parser.next_event(), fatal);
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn stream_parser_enforces_the_configured_body_cap_with_the_request_id() {
        let mut parser = StreamParser::new(16);
        let header = FrameHeader::request(Op::Compress, 2, 0xABCD, 17);
        parser.push(&header.encode());
        assert!(matches!(
            parser.next_event(),
            StreamEvent::Fatal {
                error: ProtocolError::BodyTooLarge {
                    declared: 17,
                    max: 16
                },
                request_id: 0xABCD,
            }
        ));

        // The protocol hard cap also recovers the id (magic+version valid).
        let mut parser = StreamParser::new(MAX_BODY_LEN);
        let mut raw = FrameHeader::request(Op::Compress, 2, 0x77, 0).encode();
        raw[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        parser.push(&raw);
        assert!(matches!(
            parser.next_event(),
            StreamEvent::Fatal {
                error: ProtocolError::BodyTooLarge { .. },
                request_id: 0x77,
            }
        ));
    }

    #[test]
    fn status_mapping_is_specific() {
        assert_eq!(
            status_for(&ProtocolError::UnsupportedVersion(9)),
            Status::UnsupportedVersion
        );
        assert_eq!(status_for(&ProtocolError::UnknownOp(0)), Status::UnknownOp);
        assert_eq!(
            status_for(&ProtocolError::UnknownCodec(0)),
            Status::UnknownCodec
        );
        assert_eq!(
            status_for(&ProtocolError::BodyTooLarge {
                declared: 10,
                max: 1
            }),
            Status::FrameTooLarge
        );
        assert_eq!(
            status_for(&ProtocolError::Malformed("x")),
            Status::Malformed
        );
    }
}
