//! A classic integer arithmetic coder (CACM-87 style with E1/E2/E3
//! renormalisation) producing a byte-packed bitstream.
//!
//! Symbols are coded from cumulative-frequency triples
//! `(cum_low, cum_high, total)` with `total <= MAX_TOTAL`.  The coder is
//! exact: decoding with the same model state reproduces the symbol stream
//! bit-for-bit, which the property tests in this module verify.

/// Maximum allowed total frequency for a coding step.
pub const MAX_TOTAL: u32 = 1 << 16;

const PRECISION: u64 = 32;
const WHOLE: u64 = 1 << PRECISION;
const HALF: u64 = WHOLE / 2;
const QUARTER: u64 = WHOLE / 4;
const THREE_QUARTER: u64 = 3 * QUARTER;

/// Bit-level output buffer that packs bits MSB-first into bytes.
#[derive(Default, Debug, Clone)]
struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u8,
}

impl BitWriter {
    fn push(&mut self, bit: bool) {
        self.current = (self.current << 1) | u8::from(bit);
        self.filled += 1;
        if self.filled == 8 {
            self.bytes.push(self.current);
            self.current = 0;
            self.filled = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Bit-level reader over a byte slice, returning 0 bits past the end (the
/// decoder only consumes a bounded number of trailing bits).
#[derive(Debug, Clone)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            bit: 0,
        }
    }

    fn next(&mut self) -> bool {
        if self.pos >= self.bytes.len() {
            return false;
        }
        let b = (self.bytes[self.pos] >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        b == 1
    }
}

/// Arithmetic encoder.
#[derive(Debug, Clone)]
pub struct ArithmeticEncoder {
    low: u64,
    high: u64,
    pending: u64,
    writer: BitWriter,
    symbols: u64,
}

impl Default for ArithmeticEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithmeticEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        ArithmeticEncoder {
            low: 0,
            high: WHOLE - 1,
            pending: 0,
            writer: BitWriter::default(),
            symbols: 0,
        }
    }

    /// Encodes one symbol described by its cumulative interval
    /// `[cum_low, cum_high)` out of `total`.
    ///
    /// # Panics
    /// Panics if the interval is empty or `total` exceeds [`MAX_TOTAL`].
    pub fn encode(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        assert!(cum_low < cum_high, "empty coding interval");
        assert!(cum_high <= total, "interval exceeds total");
        assert!(total <= MAX_TOTAL, "total {total} exceeds MAX_TOTAL");
        let range = self.high - self.low + 1;
        let total = total as u64;
        self.high = self.low + range * cum_high as u64 / total - 1;
        self.low += range * cum_low as u64 / total;
        loop {
            if self.high < HALF {
                self.emit(false);
            } else if self.low >= HALF {
                self.emit(true);
                self.low -= HALF;
                self.high -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTER {
                self.pending += 1;
                self.low -= QUARTER;
                self.high -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
        }
        self.symbols += 1;
    }

    /// Encodes a raw bit without modelling (bypass mode), used for escape
    /// payloads.
    pub fn encode_bit_raw(&mut self, bit: bool) {
        // A raw bit is a symbol with probability 1/2.
        if bit {
            self.encode(1, 2, 2);
        } else {
            self.encode(0, 1, 2);
        }
    }

    /// Encodes `bits` low-order bits of `value` in bypass mode, MSB first.
    pub fn encode_bits_raw(&mut self, value: u64, bits: u32) {
        for i in (0..bits).rev() {
            self.encode_bit_raw((value >> i) & 1 == 1);
        }
    }

    fn emit(&mut self, bit: bool) {
        self.writer.push(bit);
        while self.pending > 0 {
            self.writer.push(!bit);
            self.pending -= 1;
        }
    }

    /// Number of symbols encoded so far.
    pub fn symbols_encoded(&self) -> u64 {
        self.symbols
    }

    /// Current compressed size in bits (excluding the final flush).
    pub fn bits_written(&self) -> usize {
        self.writer.bytes.len() * 8 + self.writer.filled as usize
    }

    /// Flushes the coder and returns the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        // Emit enough bits to disambiguate the final interval.
        self.pending += 1;
        if self.low < QUARTER {
            self.emit(false);
        } else {
            self.emit(true);
        }
        self.writer.finish()
    }
}

/// Arithmetic decoder over a compressed byte slice.
#[derive(Debug, Clone)]
pub struct ArithmeticDecoder<'a> {
    low: u64,
    high: u64,
    value: u64,
    reader: BitReader<'a>,
}

impl<'a> ArithmeticDecoder<'a> {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut reader = BitReader::new(bytes);
        let mut value = 0u64;
        for _ in 0..PRECISION {
            value = (value << 1) | u64::from(reader.next());
        }
        ArithmeticDecoder {
            low: 0,
            high: WHOLE - 1,
            value,
            reader,
        }
    }

    /// Returns the cumulative-frequency position of the next symbol, to be
    /// looked up against the model's CDF.  `total` must match the total used
    /// at encode time.
    pub fn decode_target(&self, total: u32) -> u32 {
        let range = self.high - self.low + 1;
        let scaled = ((self.value - self.low + 1) * total as u64 - 1) / range;
        scaled.min(total as u64 - 1) as u32
    }

    /// Consumes the symbol whose cumulative interval is
    /// `[cum_low, cum_high)` out of `total` (as returned by the model after
    /// resolving [`ArithmeticDecoder::decode_target`]).
    pub fn decode_update(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        assert!(cum_low < cum_high, "empty coding interval");
        let range = self.high - self.low + 1;
        let total = total as u64;
        self.high = self.low + range * cum_high as u64 / total - 1;
        self.low += range * cum_low as u64 / total;
        loop {
            if self.high < HALF {
                // nothing
            } else if self.low >= HALF {
                self.low -= HALF;
                self.high -= HALF;
                self.value -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTER {
                self.low -= QUARTER;
                self.high -= QUARTER;
                self.value -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
            self.value = (self.value << 1) | u64::from(self.reader.next());
        }
    }

    /// Decodes one raw (bypass) bit.
    pub fn decode_bit_raw(&mut self) -> bool {
        let target = self.decode_target(2);
        let bit = target >= 1;
        if bit {
            self.decode_update(1, 2, 2);
        } else {
            self.decode_update(0, 1, 2);
        }
        bit
    }

    /// Decodes `bits` bypass bits into an unsigned value, MSB first.
    pub fn decode_bits_raw(&mut self, bits: u32) -> u64 {
        let mut v = 0u64;
        for _ in 0..bits {
            v = (v << 1) | u64::from(self.decode_bit_raw());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Encodes and decodes a symbol stream against a fixed frequency table.
    fn roundtrip(symbols: &[usize], freqs: &[u32]) -> Vec<usize> {
        let total: u32 = freqs.iter().sum();
        let cdf: Vec<u32> = std::iter::once(0)
            .chain(freqs.iter().scan(0u32, |acc, &f| {
                *acc += f;
                Some(*acc)
            }))
            .collect();
        let mut enc = ArithmeticEncoder::new();
        for &s in symbols {
            enc.encode(cdf[s], cdf[s + 1], total);
        }
        let bytes = enc.finish();
        let mut dec = ArithmeticDecoder::new(&bytes);
        let mut out = Vec::with_capacity(symbols.len());
        for _ in 0..symbols.len() {
            let target = dec.decode_target(total);
            let s = cdf.partition_point(|&c| c <= target) - 1;
            dec.decode_update(cdf[s], cdf[s + 1], total);
            out.push(s);
        }
        out
    }

    #[test]
    fn roundtrip_small_known_stream() {
        let freqs = vec![5, 1, 10, 3];
        let symbols = vec![0, 2, 2, 1, 3, 0, 2, 2, 2, 3, 1, 0];
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn roundtrip_single_symbol_alphabet() {
        let freqs = vec![7];
        let symbols = vec![0; 100];
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn roundtrip_empty_stream() {
        let freqs = vec![1, 1];
        let symbols: Vec<usize> = vec![];
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn skewed_distribution_compresses_below_uniform() {
        // A highly skewed stream must take fewer bits than 1 bit/symbol.
        let freqs = [1000, 8];
        let symbols: Vec<usize> = (0..2000).map(|i| usize::from(i % 100 == 0)).collect();
        let total: u32 = freqs.iter().sum();
        let cdf = [0u32, freqs[0], total];
        let mut enc = ArithmeticEncoder::new();
        for &s in &symbols {
            enc.encode(cdf[s], cdf[s + 1], total);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() * 8 < symbols.len() / 2,
            "skewed stream took {} bits for {} symbols",
            bytes.len() * 8,
            symbols.len()
        );
    }

    #[test]
    fn bypass_bits_roundtrip() {
        let mut enc = ArithmeticEncoder::new();
        enc.encode_bits_raw(0b1011_0010_1111, 12);
        enc.encode_bits_raw(u32::MAX as u64, 32);
        enc.encode_bits_raw(0, 5);
        let bytes = enc.finish();
        let mut dec = ArithmeticDecoder::new(&bytes);
        assert_eq!(dec.decode_bits_raw(12), 0b1011_0010_1111);
        assert_eq!(dec.decode_bits_raw(32), u32::MAX as u64);
        assert_eq!(dec.decode_bits_raw(5), 0);
    }

    #[test]
    fn mixed_modelled_and_bypass_roundtrip() {
        let freqs = [3u32, 9, 4];
        let total: u32 = freqs.iter().sum();
        let cdf = [0u32, 3, 12, 16];
        let mut enc = ArithmeticEncoder::new();
        enc.encode(cdf[1], cdf[2], total);
        enc.encode_bits_raw(0xABCD, 16);
        enc.encode(cdf[0], cdf[1], total);
        enc.encode(cdf[2], cdf[3], total);
        let bytes = enc.finish();
        let mut dec = ArithmeticDecoder::new(&bytes);
        let t = dec.decode_target(total);
        assert!((cdf[1]..cdf[2]).contains(&t));
        dec.decode_update(cdf[1], cdf[2], total);
        assert_eq!(dec.decode_bits_raw(16), 0xABCD);
        let t = dec.decode_target(total);
        assert!(t < cdf[1]);
        dec.decode_update(cdf[0], cdf[1], total);
        let t = dec.decode_target(total);
        assert!(t >= cdf[2]);
        dec.decode_update(cdf[2], cdf[3], total);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_roundtrip_arbitrary_streams(
            freqs in prop::collection::vec(1u32..200, 2..12),
            raw_symbols in prop::collection::vec(0usize..1000, 0..300),
        ) {
            let k = freqs.len();
            let symbols: Vec<usize> = raw_symbols.iter().map(|&s| s % k).collect();
            prop_assert_eq!(roundtrip(&symbols, &freqs), symbols);
        }

        #[test]
        fn prop_bypass_roundtrip(values in prop::collection::vec(0u64..u32::MAX as u64, 1..64)) {
            let mut enc = ArithmeticEncoder::new();
            for &v in &values {
                enc.encode_bits_raw(v, 32);
            }
            let bytes = enc.finish();
            let mut dec = ArithmeticDecoder::new(&bytes);
            for &v in &values {
                prop_assert_eq!(dec.decode_bits_raw(32), v);
            }
        }
    }
}
