//! Synthetic JHTDB-like isotropic turbulence.
//!
//! The JHTDB subset used in the paper is a DNS velocity field: broadband
//! spatial spectra close to Kolmogorov's k^(-5/3) law, zero divergence, and
//! temporal decorrelation that is noticeably faster than climate data (which
//! is why the paper's gains over the learned baselines are smallest there).
//!
//! The generator synthesises a 2-D stream function as a superposition of
//! random Fourier modes with a k^(-α) amplitude envelope and evolves each
//! mode with its own phase velocity plus a slow random drift.  Velocity
//! components are obtained from the stream function (u = ∂ψ/∂y,
//! v = −∂ψ/∂x), which makes the sampled field divergence-free by
//! construction.

use crate::field::{DatasetKind, FieldSpec, ScientificDataset, Variable};
use gld_tensor::{Tensor, TensorRng};

/// Number of random Fourier modes in the stream function.
const NUM_MODES: usize = 48;
/// Spectral slope of the stream-function amplitude.  Velocity amplitude then
/// falls off like k^(-SLOPE+1) ≈ k^(-5/3) for SLOPE ≈ 8/3.
const SLOPE: f32 = 8.0 / 3.0;

struct FourierMode {
    kx: f32,
    ky: f32,
    amplitude: f32,
    phase: f32,
    omega: f32,
}

/// Generates a JHTDB-like dataset.  Variables come in (u, v, speed, …)
/// groups derived from independent stream functions.
pub fn generate(spec: &FieldSpec, rng: &mut TensorRng) -> ScientificDataset {
    let mut variables = Vec::with_capacity(spec.variables);
    let mut group = 0usize;
    while variables.len() < spec.variables {
        let modes = sample_modes(spec, rng);
        let (u, v) = velocity_frames(spec, &modes);
        let names = [
            format!("velocity_u_{group}"),
            format!("velocity_v_{group}"),
            format!("speed_{group}"),
        ];
        let speed = u.square().add(&v.square()).sqrt();
        for (name, frames) in names.into_iter().zip([u, v, speed]) {
            if variables.len() < spec.variables {
                variables.push(Variable::new(name, frames));
            }
        }
        group += 1;
    }
    ScientificDataset {
        kind: DatasetKind::Jhtdb,
        spec: *spec,
        variables,
    }
}

fn sample_modes(spec: &FieldSpec, rng: &mut TensorRng) -> Vec<FourierMode> {
    let max_k = (spec.width.min(spec.height) / 2).max(2) as f32;
    (0..NUM_MODES)
        .map(|_| {
            // Sample wavenumber magnitude with a bias toward low k, then a
            // random direction.
            let k_mag = 1.0 + rng.sample_uniform(0.0, 1.0).powi(2) * (max_k - 1.0);
            let theta = rng.sample_uniform(0.0, 2.0 * std::f32::consts::PI);
            let kx = k_mag * theta.cos() * 2.0 * std::f32::consts::PI / spec.width as f32;
            let ky = k_mag * theta.sin() * 2.0 * std::f32::consts::PI / spec.height as f32;
            FourierMode {
                kx,
                ky,
                amplitude: k_mag.powf(-SLOPE) * rng.sample_normal().abs().max(0.3),
                phase: rng.sample_uniform(0.0, 2.0 * std::f32::consts::PI),
                // Larger eddies evolve more slowly (sweeping hypothesis);
                // the overall rate is set high enough that turbulence
                // decorrelates noticeably faster than the climate fields.
                omega: 0.25 * k_mag.sqrt() * rng.sample_uniform(0.5, 1.5),
            }
        })
        .collect()
}

/// Evaluates the analytic derivatives of the stream function to obtain the
/// divergence-free velocity components for every frame.
fn velocity_frames(spec: &FieldSpec, modes: &[FourierMode]) -> (Tensor, Tensor) {
    let (t_len, h, w) = (spec.timesteps, spec.height, spec.width);
    let mut u = vec![0.0f32; t_len * h * w];
    let mut v = vec![0.0f32; t_len * h * w];
    for t in 0..t_len {
        let tt = t as f32;
        for y in 0..h {
            for x in 0..w {
                let mut du = 0.0f32;
                let mut dv = 0.0f32;
                for m in modes {
                    let arg = m.kx * x as f32 + m.ky * y as f32 + m.phase + m.omega * tt;
                    let c = arg.cos() * m.amplitude;
                    // ψ = A sin(arg) ⇒ u = ∂ψ/∂y = A ky cos(arg),
                    //                   v = −∂ψ/∂x = −A kx cos(arg)
                    du += m.ky * c;
                    dv -= m.kx * c;
                }
                let idx = (t * h + y) * w + x;
                u[idx] = du;
                v[idx] = dv;
            }
        }
    }
    (
        Tensor::from_vec(u, &[t_len, h, w]),
        Tensor::from_vec(v, &[t_len, h, w]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_tensor::stats::nrmse;

    fn small() -> ScientificDataset {
        let mut rng = TensorRng::new(13);
        generate(&FieldSpec::new(3, 16, 16, 16), &mut rng)
    }

    #[test]
    fn shape_and_determinism() {
        let mut r1 = TensorRng::new(4);
        let mut r2 = TensorRng::new(4);
        let a = generate(&FieldSpec::new(3, 8, 16, 16), &mut r1);
        let b = generate(&FieldSpec::new(3, 8, 16, 16), &mut r2);
        assert_eq!(a.variables.len(), 3);
        assert_eq!(a.variables[0].frames.dims(), &[8, 16, 16]);
        assert_eq!(a.variables[1].frames, b.variables[1].frames);
        assert!(a.variables[0].name.starts_with("velocity_u"));
    }

    #[test]
    fn velocity_field_is_divergence_free() {
        // Central-difference divergence of (u, v) should be near zero
        // relative to the velocity magnitude.
        let ds = small();
        let u = ds.variables[0].frame(0);
        let v = ds.variables[1].frame(0);
        let (h, w) = (u.dim(0), u.dim(1));
        let mut div_norm = 0.0f64;
        let mut vel_norm = 0.0f64;
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let dudx = (u.at(&[y, x + 1]) - u.at(&[y, x - 1])) / 2.0;
                let dvdy = (v.at(&[y + 1, x]) - v.at(&[y - 1, x])) / 2.0;
                div_norm += ((dudx + dvdy) as f64).powi(2);
                vel_norm += (u.at(&[y, x]) as f64).powi(2) + (v.at(&[y, x]) as f64).powi(2);
            }
        }
        // Analytic derivatives are exactly divergence free; the finite
        // difference check just needs to be small relative to the field.
        assert!(
            div_norm < 0.05 * vel_norm,
            "divergence {div_norm} vs velocity {vel_norm}"
        );
    }

    #[test]
    fn spectrum_decays_with_wavenumber() {
        // Project one frame onto low- and high-wavenumber Fourier modes; the
        // low-k band must carry far more energy.
        let ds = small();
        let f = ds.variables[0].frame(0);
        let (h, w) = (f.dim(0), f.dim(1));
        let energy = |k: usize| -> f64 {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for y in 0..h {
                for x in 0..w {
                    let arg = 2.0 * std::f64::consts::PI * (k * x) as f64 / w as f64;
                    re += f.at(&[y, x]) as f64 * arg.cos();
                    im += f.at(&[y, x]) as f64 * arg.sin();
                }
            }
            re * re + im * im
        };
        let low: f64 = (1..3).map(energy).sum();
        let high: f64 = (6..8).map(energy).sum();
        assert!(low > high, "low-k energy {low} vs high-k {high}");
    }

    #[test]
    fn turbulence_decorrelates_faster_than_climate() {
        // Per-frame change: the normalised difference between consecutive
        // turbulence frames is larger than for the climate generator, which
        // is the property behind the paper's observation that the learned
        // interpolator's advantage is smallest on JHTDB.
        let mut rng = TensorRng::new(2);
        let turb = generate(&FieldSpec::tiny(), &mut rng);
        let mut rng = TensorRng::new(2);
        let climate = crate::e3sm::generate(&FieldSpec::tiny(), &mut rng);
        let step_nrmse = |frames: &Tensor| {
            let f0 = frames.slice_axis(0, 0, 1);
            let f1 = frames.slice_axis(0, 1, 2);
            nrmse(&f0, &f1)
        };
        let rt = step_nrmse(&turb.variables[0].frames);
        let rc = step_nrmse(&climate.variables[0].frames);
        assert!(
            rt > rc,
            "turbulence per-frame change {rt} should exceed climate's {rc}"
        );
    }

    #[test]
    fn speed_channel_is_nonnegative() {
        let ds = small();
        assert!(ds.variables[2].name.starts_with("speed"));
        assert!(ds.variables[2].frames.min() >= 0.0);
    }
}
