//! Blocking clients for the `GLDS` protocol — what the integration tests,
//! the `gld-service-check` binary, the `service_throughput` bench and the
//! root example speak through.
//!
//! One [`ServiceClient`] owns one connection and issues one request at a
//! time; concurrency comes from opening more clients, exactly like the
//! tests do.  For throughput over a *single* connection, convert with
//! [`ServiceClient::into_pipelined`]: a [`PipelinedClient`] submits many
//! requests without waiting and receives replies **as the server finishes
//! them — possibly out of order — matched by request id**.

use crate::protocol::{
    self, decode_blocks_body, DecompressRequest, FrameHeader, HelloRequest, HelloResponse, Op,
    ProtocolError, Status, StatusResponse, EXT_CONTAINER_STAGE, EXT_SHARED_PROFILES,
};
use gld_core::{CodecId, ErrorTarget};
use gld_datasets::Variable;
use gld_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server's bytes violated the protocol.
    Protocol(ProtocolError),
    /// The server answered with a non-`Ok` status and a diagnostic.
    Server {
        /// The response status.
        status: Status,
        /// The server's UTF-8 diagnostic.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server refused ({status:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Server info returned by [`ServiceClient::hello`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// The negotiated codec — the session default for later requests.
    pub codec: CodecId,
    /// Whether the session negotiated the container v3 per-frame stage:
    /// `true` means compress responses arrive as staged v3 containers,
    /// `false` (an old or opted-out peer on either side) means stage-free
    /// v2 streams.
    pub stage: bool,
    /// Whether the session negotiated container v4 shared entropy-model
    /// profiles: `true` means compress responses arrive as v4 containers
    /// (one coding profile fitted per variable, every frame coded warm
    /// against it), and takes precedence over `stage`.  `false` downgrades
    /// to whatever `stage` says.
    pub profiles: bool,
    /// Number of shards the server routes across.
    pub shards: u32,
    /// Per-shard bounded in-flight request window.
    pub shard_window: u32,
    /// Streaming-executor queue depth per compress call.
    pub queue_depth: u32,
}

/// A blocking `GLDS` connection.
pub struct ServiceClient {
    stream: TcpStream,
    /// The connected peer, kept so `hello` can reconnect for its
    /// legacy-server downgrade retry.
    addr: SocketAddr,
    next_id: u64,
    negotiated: Option<CodecId>,
    stage: bool,
    profiles: bool,
}

impl ServiceClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let addr = stream.peer_addr()?;
        Ok(ServiceClient {
            stream,
            addr,
            next_id: 1,
            negotiated: None,
            stage: false,
            profiles: false,
        })
    }

    /// Connects with a bound on how long the TCP dial may take.  The
    /// address must resolve to at least one socket address; each candidate
    /// is tried with the full `timeout`.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: std::time::Duration,
    ) -> std::io::Result<ServiceClient> {
        let mut last = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let addr = stream.peer_addr()?;
                    return Ok(ServiceClient {
                        stream,
                        addr,
                        next_id: 1,
                        negotiated: None,
                        stage: false,
                        profiles: false,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        }))
    }

    /// Bounds every blocking socket read and write on this connection
    /// (`None` blocks forever — the default).  With a timeout set, a stalled
    /// server surfaces as [`ClientError::Io`] with `WouldBlock`/`TimedOut`
    /// instead of hanging the caller.
    pub fn set_io_timeouts(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// The peer this client dialled.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The codec negotiated by the last [`ServiceClient::hello`], if any.
    pub fn negotiated_codec(&self) -> Option<CodecId> {
        self.negotiated
    }

    /// Whether the session negotiated staged (container v3) compress
    /// responses in the last [`ServiceClient::hello`].
    pub fn stage_enabled(&self) -> bool {
        self.stage
    }

    /// Whether the session negotiated shared-profile (container v4)
    /// compress responses in the last [`ServiceClient::hello`].
    pub fn profiles_enabled(&self) -> bool {
        self.profiles
    }

    /// Negotiates a codec (client preference order) and fetches server
    /// info, advertising container-stage and shared-profile support.  The
    /// chosen codec becomes the session default for
    /// [`ServiceClient::compress`] calls made without an explicit codec.
    ///
    /// Servers predating the stage treat the advertisement byte as a
    /// framing violation and close the connection; when that happens the
    /// client reconnects once and retries the `Hello` without the bits, so
    /// negotiation degrades to a stage-free session instead of failing.
    /// (A server that knows the stage but not the profiles simply echoes
    /// the profile bit clear — no retry needed.)
    pub fn hello(&mut self, preferences: &[CodecId]) -> Result<ServerInfo, ClientError> {
        match self.hello_with_options(preferences, true, true) {
            Ok(info) => Ok(info),
            // A pre-stage server rejects the non-zero reserved byte with a
            // well-formed error frame that echoes request id 0 and a
            // Malformed status, then hard-closes — surfacing here as a
            // protocol violation (wrong request-id echo) or a Malformed
            // refusal.  Re-dial and speak exactly like a pre-stage client.
            // Transient I/O failures and statuses a stage-aware server can
            // answer (NoCommonCodec, ...) are NOT downgraded: the bit was
            // not the problem, and a silent stage-free session would cost
            // every later response body — the caller retries those.
            Err(
                ClientError::Protocol(_)
                | ClientError::Server {
                    status: Status::Malformed,
                    ..
                },
            ) => {
                let stream = TcpStream::connect(self.addr)?;
                let _ = stream.set_nodelay(true);
                self.stream = stream;
                self.hello_with_options(preferences, false, false)
            }
            Err(other) => Err(other),
        }
    }

    /// [`ServiceClient::hello`] with the feature advertisements explicit
    /// (and no downgrade retry): `request_stage: false` speaks exactly like
    /// a pre-stage client, so compress responses come back as stage-free v2
    /// containers; `request_profiles: false` speaks like a pre-profile
    /// client and caps the session at v3.
    pub fn hello_with_options(
        &mut self,
        preferences: &[CodecId],
        request_stage: bool,
        request_profiles: bool,
    ) -> Result<ServerInfo, ClientError> {
        let request = HelloRequest {
            proposals: preferences.iter().map(|&c| c as u8).collect(),
        };
        let mut ext = 0u8;
        if request_stage {
            ext |= EXT_CONTAINER_STAGE;
        }
        if request_profiles {
            ext |= EXT_SHARED_PROFILES;
        }
        let (header, body) = self.request_ext(Op::Hello, 0, ext, &request.encode_body())?;
        let codec = CodecId::from_u8(header.codec)
            .map_err(|_| ClientError::Protocol(ProtocolError::UnknownCodec(header.codec)))?;
        let info = HelloResponse::decode_body(&body)?;
        self.negotiated = Some(codec);
        // A feature holds only when the server echoed its bit (an old
        // server leaves the bit — or the whole byte — zero).
        self.stage = request_stage && header.ext & EXT_CONTAINER_STAGE != 0;
        self.profiles = request_profiles && header.ext & EXT_SHARED_PROFILES != 0;
        Ok(ServerInfo {
            codec,
            stage: self.stage,
            profiles: self.profiles,
            shards: info.shards,
            shard_window: info.shard_window,
            queue_depth: info.queue_depth,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(Op::Ping, 0, &[])?;
        Ok(())
    }

    /// Compresses `variable` on the server with the session codec from the
    /// last [`ServiceClient::hello`], returning the encoded `GLDC`
    /// container — byte-identical to `Codec::compress_variable(...).0.encode()`
    /// run locally.
    pub fn compress(
        &mut self,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ClientError> {
        // Codec byte 0 = session default; the server rejects it if no Hello
        // happened, which maps to the same error as an unknown codec here.
        self.compress_impl(0, key, variable, block_frames, target)
    }

    /// [`ServiceClient::compress`] with an explicit codec, independent of
    /// any negotiation.
    pub fn compress_as(
        &mut self,
        codec: CodecId,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ClientError> {
        self.compress_impl(codec as u8, key, variable, block_frames, target)
    }

    fn compress_impl(
        &mut self,
        codec_byte: u8,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ClientError> {
        let frames = &variable.frames;
        assert_eq!(frames.rank(), 3, "variable frames must be [T, H, W]");
        // Serialise straight from the variable's buffer: no intermediate
        // owned `Vec<f32>` copy of a possibly huge frame stack.
        let body = protocol::encode_compress_body(
            key,
            block_frames,
            target,
            [
                frames.dim(0) as u32,
                frames.dim(1) as u32,
                frames.dim(2) as u32,
            ],
            frames.data(),
        );
        let (_, body) = self.request(Op::Compress, codec_byte, &body)?;
        Ok(body)
    }

    /// Decompresses an encoded `GLDC` container on the server, returning
    /// the block tensors in temporal order.  `key` must be the variable's
    /// key so the request lands on the same shard as its compress.
    pub fn decompress(&mut self, key: &str, container: &[u8]) -> Result<Vec<Tensor>, ClientError> {
        let request = DecompressRequest {
            key: key.to_string(),
            container: container.to_vec(),
        };
        let (_, body) = self.request(Op::Decompress, 0, &request.encode_body())?;
        Ok(decode_blocks_body(&body)?)
    }

    /// Fetches the server's live counters ([`Op::Status`]): service-wide
    /// connection/rejection totals plus per-shard load.  The request
    /// advertises [`protocol::EXT_STATUS_SUMMARIES`]; a server that knows
    /// the bit echoes it and appends per-op latency summaries, which land
    /// in [`StatusResponse::summaries`] (`None` from older servers).
    pub fn status(&mut self) -> Result<StatusResponse, ClientError> {
        let (_, body) = self.request_ext(Op::Status, 0, protocol::EXT_STATUS_SUMMARIES, &[])?;
        Ok(StatusResponse::decode_body(&body)?)
    }

    /// Asks the server to drain in-flight work and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request(Op::Shutdown, 0, &[])?;
        Ok(())
    }

    /// Converts this connection into a [`PipelinedClient`], keeping the
    /// negotiated session (codec, stage, profiles) and the request-id
    /// sequence.  The wire connection is the same one — only the calling
    /// discipline changes.
    pub fn into_pipelined(self) -> PipelinedClient {
        PipelinedClient {
            reader: std::io::BufReader::new(self.stream),
            wbuf: Vec::new(),
            next_id: self.next_id,
            pending: HashMap::new(),
        }
    }

    /// One request/response round trip: write the frame, read the reply,
    /// check the id echo, and turn non-`Ok` statuses into
    /// [`ClientError::Server`].
    fn request(
        &mut self,
        op: Op,
        codec_byte: u8,
        body: &[u8],
    ) -> Result<(FrameHeader, Vec<u8>), ClientError> {
        self.request_ext(op, codec_byte, 0, body)
    }

    fn request_ext(
        &mut self,
        op: Op,
        codec_byte: u8,
        ext: u8,
        body: &[u8],
    ) -> Result<(FrameHeader, Vec<u8>), ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let header =
            FrameHeader::request(op, codec_byte, request_id, body.len() as u64).with_ext(ext);
        protocol::write_frame(&mut self.stream, &header, body)?;
        self.stream.flush()?;
        let (response, response_body) =
            protocol::read_frame(&mut self.stream, protocol::MAX_BODY_LEN)??;
        if response.request_id != request_id {
            return Err(ClientError::Protocol(ProtocolError::Malformed(
                "response echoes the wrong request id",
            )));
        }
        if response.status != Status::Ok {
            return Err(ClientError::Server {
                status: response.status,
                message: String::from_utf8_lossy(&response_body).into_owned(),
            });
        }
        Ok((response, response_body))
    }
}

/// One decoded pipelined reply, paired with its request id by
/// [`PipelinedClient::recv`].
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// A `Ping` answered.
    Pong,
    /// A compress response: the encoded `GLDC` container.
    Compressed(Vec<u8>),
    /// A decompress response: the block tensors in temporal order.
    Decompressed(Vec<Tensor>),
    /// A `Status` response: the server's live counters.
    ServerStatus(StatusResponse),
    /// A `Shutdown` acknowledged.
    ShutdownAck,
    /// The server refused this request with a typed status (including
    /// [`Status::RateLimited`]) and a diagnostic; the connection itself is
    /// still healthy and other outstanding requests proceed.
    Refused {
        /// The refusal status.
        status: Status,
        /// The server's UTF-8 diagnostic.
        message: String,
    },
}

/// A pipelined `GLDS` connection: submit many requests without waiting,
/// then receive replies **in whatever order the server finishes them**,
/// matched by request id.
///
/// Make one via [`ServiceClient::into_pipelined`] after negotiating the
/// session with `hello` — the negotiated codec remains the session default
/// on the server side, so `submit_compress` with codec byte 0 keeps using
/// it.  Per-request refusals (rate limit, malformed body, ...) come back as
/// [`Reply::Refused`] rather than an `Err`, because an `Err` from
/// [`recv`](PipelinedClient::recv) means the *connection* is unusable.
///
/// The server bounds unanswered codec requests per connection
/// (`max_outstanding`, surfaced by `Op::Status`); a client that submits past
/// the bound is simply not read until replies drain, so `submit_*` may block
/// once the socket buffers fill.  Interleave submits with `recv` — or use
/// [`drain`](PipelinedClient::drain) — to keep the pipeline moving.
///
/// Submits are **batched**: `submit_*` encodes into a client-side buffer,
/// and the buffer goes out in one write on the next
/// [`recv`](PipelinedClient::recv)/[`drain`](PipelinedClient::drain) (or an
/// explicit [`flush`](PipelinedClient::flush)).  A burst of small requests
/// costs one syscall, not one per frame — the client-side half of what
/// makes pipelining outrun one-outstanding round trips.
pub struct PipelinedClient {
    reader: std::io::BufReader<TcpStream>,
    /// Encoded-but-unsent request frames, flushed in one write.
    wbuf: Vec<u8>,
    next_id: u64,
    /// Ops in flight, keyed by request id — how replies are decoded.
    pending: HashMap<u64, Op>,
}

impl PipelinedClient {
    /// Requests submitted and not yet received.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    fn submit(&mut self, op: Op, codec_byte: u8, body: &[u8]) -> Result<u64, ClientError> {
        self.submit_ext(op, codec_byte, 0, body)
    }

    fn submit_ext(
        &mut self,
        op: Op,
        codec_byte: u8,
        ext: u8,
        body: &[u8],
    ) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let header =
            FrameHeader::request(op, codec_byte, request_id, body.len() as u64).with_ext(ext);
        protocol::write_frame(&mut self.wbuf, &header, body)?;
        self.pending.insert(request_id, op);
        Ok(request_id)
    }

    /// Sends every buffered submit in one write.  Called automatically by
    /// [`recv`](PipelinedClient::recv); call it directly to push requests
    /// out without waiting for a reply.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        if !self.wbuf.is_empty() {
            self.reader.get_mut().write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Submits a liveness probe; returns its request id.
    pub fn submit_ping(&mut self) -> Result<u64, ClientError> {
        self.submit(Op::Ping, 0, &[])
    }

    /// Submits a status probe; returns its request id.  Advertises
    /// [`protocol::EXT_STATUS_SUMMARIES`] so the eventual
    /// [`Reply::ServerStatus`] carries per-op latency summaries when the
    /// server supports them.
    pub fn submit_status(&mut self) -> Result<u64, ClientError> {
        self.submit_ext(Op::Status, 0, protocol::EXT_STATUS_SUMMARIES, &[])
    }

    /// Submits a compress of `variable` under the session codec; returns its
    /// request id.  The eventual [`Reply::Compressed`] container is
    /// byte-identical to the blocking [`ServiceClient::compress`] response.
    pub fn submit_compress(
        &mut self,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<u64, ClientError> {
        self.submit_compress_as(0, key, variable, block_frames, target)
    }

    /// [`PipelinedClient::submit_compress`] with an explicit codec byte
    /// (a `CodecId as u8`, or 0 for the session default).
    pub fn submit_compress_as(
        &mut self,
        codec_byte: u8,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<u64, ClientError> {
        let frames = &variable.frames;
        assert_eq!(frames.rank(), 3, "variable frames must be [T, H, W]");
        let body = protocol::encode_compress_body(
            key,
            block_frames,
            target,
            [
                frames.dim(0) as u32,
                frames.dim(1) as u32,
                frames.dim(2) as u32,
            ],
            frames.data(),
        );
        self.submit(Op::Compress, codec_byte, &body)
    }

    /// Submits a decompress of an encoded `GLDC` container; returns its
    /// request id.  `key` must be the variable's key so the request lands
    /// on the same shard as its compress.
    pub fn submit_decompress(&mut self, key: &str, container: &[u8]) -> Result<u64, ClientError> {
        let request = DecompressRequest {
            key: key.to_string(),
            container: container.to_vec(),
        };
        self.submit(Op::Decompress, 0, &request.encode_body())
    }

    /// Submits a shutdown request; returns its request id.  The server
    /// still answers every other outstanding request while draining.
    pub fn submit_shutdown(&mut self) -> Result<u64, ClientError> {
        self.submit(Op::Shutdown, 0, &[])
    }

    /// Blocks for the next reply — **not necessarily the oldest submit** —
    /// and returns it with the request id it answers.  An `Err` means the
    /// connection is broken (I/O failure, a protocol violation, or a reply
    /// to an id that was never submitted); per-request refusals are
    /// [`Reply::Refused`].
    pub fn recv(&mut self) -> Result<(u64, Reply), ClientError> {
        self.flush()?;
        let (header, body) = protocol::read_frame(&mut self.reader, protocol::MAX_BODY_LEN)??;
        let Some(op) = self.pending.remove(&header.request_id) else {
            return Err(ClientError::Protocol(ProtocolError::Malformed(
                "response echoes a request id that is not outstanding",
            )));
        };
        if header.status != Status::Ok {
            return Ok((
                header.request_id,
                Reply::Refused {
                    status: header.status,
                    message: String::from_utf8_lossy(&body).into_owned(),
                },
            ));
        }
        let reply = match op {
            Op::Ping | Op::Hello => Reply::Pong,
            Op::Compress => Reply::Compressed(body),
            Op::Decompress => Reply::Decompressed(decode_blocks_body(&body)?),
            Op::Status => Reply::ServerStatus(StatusResponse::decode_body(&body)?),
            Op::Shutdown => Reply::ShutdownAck,
        };
        Ok((header.request_id, reply))
    }

    /// Receives until nothing is outstanding, returning every reply in
    /// arrival order (id-tagged).
    pub fn drain(&mut self) -> Result<Vec<(u64, Reply)>, ClientError> {
        let mut replies = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            replies.push(self.recv()?);
        }
        Ok(replies)
    }
}
