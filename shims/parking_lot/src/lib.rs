//! Minimal parking_lot facade over `std::sync` for offline builds: the
//! guard-returning (non-`Result`) lock API.  Poisoned locks are recovered —
//! parking_lot has no poisoning, so this matches its semantics.

#![forbid(unsafe_code)]

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
