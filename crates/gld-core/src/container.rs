//! Framed binary container for compressed variables.
//!
//! Every compressor in the stack emits per-block byte *frames*; a container
//! groups the frames of one variable behind a self-describing header so that
//! multi-block compressed output is a single `Vec<u8>` / `Write` stream whose
//! measured length **is** the reported compressed size (Eq. 11 denominator —
//! no hand-counted header arithmetic).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GLDC"
//! 4       2     format version (currently 1)
//! 6       1     codec id (see [`CodecId`])
//! 7       1     flags (reserved, must be 0)
//! 8       4     block count K
//! 12      ...   K frames, each: u64 payload length + payload bytes
//! ```

use std::fmt;
use std::io::{Read, Write};

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"GLDC";

/// Current container format version.
pub const VERSION: u16 = 1;

/// Fixed header length in bytes (magic + version + codec + flags + count).
pub const HEADER_LEN: usize = 12;

/// Identifies which compressor produced the frames in a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The generative latent diffusion compressor ("Ours").
    Gld = 1,
    /// SZ3-like prediction-based rule compressor.
    SzLike = 2,
    /// ZFP-like transform-based rule compressor.
    ZfpLike = 3,
    /// CDC analogue, signal-predicting variant.
    CdcX = 4,
    /// CDC analogue, noise-predicting variant.
    CdcEps = 5,
    /// GCD analogue (3-D block-based CDC).
    Gcd = 6,
    /// VAE with super-resolution refinement.
    VaeSr = 7,
}

impl CodecId {
    /// Parses a codec id byte.
    pub fn from_u8(byte: u8) -> Result<Self, ContainerError> {
        Ok(match byte {
            1 => CodecId::Gld,
            2 => CodecId::SzLike,
            3 => CodecId::ZfpLike,
            4 => CodecId::CdcX,
            5 => CodecId::CdcEps,
            6 => CodecId::Gcd,
            7 => CodecId::VaeSr,
            other => return Err(ContainerError::UnknownCodec(other)),
        })
    }
}

/// Errors produced while decoding a container or a block frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The codec id byte is not a known [`CodecId`].
    UnknownCodec(u8),
    /// The stream ended before the declared content.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after the declared content.
    TrailingBytes(usize),
    /// A block frame violated its own invariants.
    Corrupt(&'static str),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic(found) => {
                write!(f, "bad container magic {found:?}, expected {MAGIC:?}")
            }
            ContainerError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported container version {v}, this build reads {VERSION}"
                )
            }
            ContainerError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            ContainerError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated stream: needed {needed} bytes, had {available}"
                )
            }
            ContainerError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after container content")
            }
            ContainerError::Corrupt(what) => write!(f, "corrupt block frame: {what}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Bounds-checked little-endian reader over a byte slice, shared by the
/// container and block-frame decoders.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], ContainerError> {
        if self.remaining() < len {
            return Err(ContainerError::Truncated {
                // Saturate: `len` may be a corrupt u64 length prefix near
                // usize::MAX, and a corrupt frame must surface as an error,
                // never as an arithmetic-overflow panic.
                needed: self.pos.saturating_add(len),
                available: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Result<f32, ContainerError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte section (`u64` length + payload).
    pub fn read_section(&mut self) -> Result<&'a [u8], ContainerError> {
        let len = self.read_u64()? as usize;
        self.take(len)
    }

    /// Asserts that the whole input was consumed.
    pub fn expect_end(&self) -> Result<(), ContainerError> {
        if self.remaining() != 0 {
            return Err(ContainerError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Appends a length-prefixed byte section (`u64` length + payload).
pub fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A decoded (or under-construction) container: codec identity plus the
/// per-block frames, in temporal order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Container {
    codec: CodecId,
    blocks: Vec<Vec<u8>>,
}

impl Container {
    /// An empty container for `codec`.
    pub fn new(codec: CodecId) -> Self {
        Container {
            codec,
            blocks: Vec::new(),
        }
    }

    /// Wraps existing frames.
    pub fn from_blocks(codec: CodecId, blocks: Vec<Vec<u8>>) -> Self {
        Container { codec, blocks }
    }

    /// The codec that produced these frames.
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// The frames, in temporal order.
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Consumes the container, returning the frames.
    pub fn into_blocks(self) -> Vec<Vec<u8>> {
        self.blocks
    }

    /// Appends one block frame.
    pub fn push(&mut self, frame: Vec<u8>) {
        self.blocks.push(frame);
    }

    /// Exact size of [`Container::encode`]'s output, without encoding.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.blocks.iter().map(|b| 8 + b.len()).sum::<usize>()
    }

    /// Serialises the container to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.codec as u8);
        out.push(0); // flags
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for block in &self.blocks {
            write_section(&mut out, block);
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Streams the encoded container into `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.encode())
    }

    /// Parses a container, validating magic, version and codec id, and
    /// rejecting truncated or over-long input.
    pub fn decode(bytes: &[u8]) -> Result<Self, ContainerError> {
        let mut reader = ByteReader::new(bytes);
        let magic: [u8; 4] = reader.take(4)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(ContainerError::BadMagic(magic));
        }
        let version = reader.read_u16()?;
        if version != VERSION {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let codec = CodecId::from_u8(reader.read_u8()?)?;
        let flags = reader.read_u8()?;
        if flags != 0 {
            return Err(ContainerError::Corrupt("nonzero reserved flags"));
        }
        let count = reader.read_u32()? as usize;
        let mut blocks = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            blocks.push(reader.read_section()?.to_vec());
        }
        reader.expect_end()?;
        Ok(Container { codec, blocks })
    }

    /// Reads and parses a container from `reader` (e.g. a file or socket).
    pub fn read_from<R: Read>(reader: &mut R) -> std::io::Result<Result<Self, ContainerError>> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(Self::decode(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        Container::from_blocks(
            CodecId::Gld,
            vec![vec![1, 2, 3], Vec::new(), vec![0xFF; 300]],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), c.encoded_len());
        let back = Container::decode(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_bad_magic_version_codec() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::BadMagic(_))
        ));

        let mut bytes = sample().encode();
        bytes[4] = 0xEE;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::UnsupportedVersion(_))
        ));

        let mut bytes = sample().encode();
        bytes[6] = 0;
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::UnknownCodec(0))
        );
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let bytes = sample().encode();
        for cut in [3, HEADER_LEN - 1, HEADER_LEN + 4, bytes.len() - 1] {
            assert!(
                matches!(
                    Container::decode(&bytes[..cut]),
                    Err(ContainerError::Truncated { .. })
                ),
                "cut at {cut} not detected"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            Container::decode(&long),
            Err(ContainerError::TrailingBytes(1))
        );

        // A corrupt u64 section length near usize::MAX must surface as a
        // Truncated error, not an arithmetic-overflow panic (the `needed`
        // field saturates).
        let mut huge_len = bytes.clone();
        huge_len[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Container::decode(&huge_len),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn write_to_matches_encode() {
        let c = sample();
        let mut sink = Vec::new();
        c.write_to(&mut sink).unwrap();
        assert_eq!(sink, c.encode());
        let parsed = Container::read_from(&mut sink.as_slice()).unwrap().unwrap();
        assert_eq!(parsed, c);
    }
}
