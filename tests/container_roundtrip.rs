//! Contract tests for the binary container format and the parallel block
//! pipeline: encode→decode equality, reported sizes matching measured
//! serialized lengths, header validation (v2 writes per-frame CRC-32
//! trailers; see `tests/streaming_executor.rs` for v1-compat and corruption
//! detection), per-block seed derivation and parallel-vs-sequential
//! bit-identical output through the streaming block executor.

use gld_baselines::SzCompressor;
use gld_core::{
    derive_block_seed, Codec, CodecId, CompressedBlock, Container, ContainerError, ErrorTarget,
    GldCompressor, GldConfig, LearnedBaseline, LearnedBaselineKind,
};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_diffusion::ConditionalDiffusion;
use gld_vae::{Vae, VaeConfig};

/// An untrained (but fully functional and deterministic) pipeline — the
/// container/framing contracts must hold regardless of model quality.
fn untrained_compressor() -> GldCompressor {
    let config = GldConfig::tiny();
    GldCompressor::from_parts(
        config,
        Vae::new(config.vae),
        ConditionalDiffusion::new(config.diffusion),
    )
}

#[test]
fn block_frame_roundtrips_and_total_bytes_is_the_serialized_length() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 5);
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    for target in [None, Some(1e-2)] {
        let compressed = compressor.compress_block(&block, target);
        let frame = compressed.encode();
        assert_eq!(
            frame.len(),
            compressed.total_bytes(),
            "reported size must equal measured serialized size (target {target:?})"
        );
        let decoded = CompressedBlock::decode(&frame).expect("frame decodes");
        assert_eq!(decoded.frames, compressed.frames);
        assert_eq!(decoded.frame_norms, compressed.frame_norms);
        assert_eq!(decoded.latent_range, compressed.latent_range);
        assert_eq!(decoded.keyframe_bytes, compressed.keyframe_bytes);
        assert_eq!(decoded.aux_bytes, compressed.aux_bytes);
        assert_eq!(decoded.sampling_seed, compressed.sampling_seed);
        assert_eq!(decoded.denoising_steps, compressed.denoising_steps);
        // The round-tripped block decompresses to the identical tensor.
        assert_eq!(
            compressor.decompress_block(&decoded),
            compressor.decompress_block(&compressed)
        );
    }
}

#[test]
fn container_stats_report_the_measured_encoded_length() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 9);
    let (container, stats) = Codec::compress_variable(
        &compressor,
        &ds.variables[0],
        compressor.config().block_frames,
        None,
    );
    let encoded = container.encode();
    assert_eq!(stats.compressed_bytes, encoded.len());
    assert_eq!(stats.blocks, 2); // 16 frames / N = 8
    assert_eq!(stats.original_bytes, 16 * 16 * 16 * 4);
    assert!(stats.compression_ratio > 1.0);
    // Decoding the container yields per-block reconstructions of the right
    // shape through the same codec.
    let decoded = Container::decode(&encoded).expect("container decodes");
    assert_eq!(decoded, container);
    let blocks = Codec::decompress_container(&compressor, &decoded).expect("codec id matches");
    assert_eq!(blocks.len(), 2);
    assert!(blocks.iter().all(|b| b.dims() == [8, 16, 16]));
}

#[test]
fn containers_reject_magic_version_and_codec_mismatches() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::Jhtdb, &FieldSpec::tiny(), 13);
    let (container, _) = Codec::compress_variable(&compressor, &ds.variables[0], 8, None);
    let good = container.encode();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        Container::decode(&bad_magic),
        Err(ContainerError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[4] = 0x7F;
    assert!(matches!(
        Container::decode(&bad_version),
        Err(ContainerError::UnsupportedVersion(_))
    ));

    let mut bad_codec = good.clone();
    bad_codec[6] = 0xEE;
    assert!(matches!(
        Container::decode(&bad_codec),
        Err(ContainerError::UnknownCodec(0xEE))
    ));

    assert!(matches!(
        Container::decode(&good[..good.len() - 3]),
        Err(ContainerError::Truncated { .. })
    ));

    // A container from a different codec is refused at decompression.
    let sz = SzCompressor::new();
    let (sz_container, _) = Codec::compress_variable(&sz, &ds.variables[0], 8, None);
    assert_eq!(sz_container.codec(), CodecId::SzLike);
    assert!(Codec::decompress_container(&compressor, &sz_container).is_err());

    // A block frame whose declared frame count exceeds the bytes present is
    // rejected as truncated without attempting a huge allocation.
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    let mut frame = compressor.compress_block(&block, None).encode();
    frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        CompressedBlock::decode(&frame),
        Err(ContainerError::Truncated { .. })
    ));
}

#[test]
fn distinct_blocks_use_distinct_derived_seeds() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 17);
    let (container, _) = Codec::compress_variable(&compressor, &ds.variables[0], 8, None);
    let blocks: Vec<CompressedBlock> = container
        .blocks()
        .iter()
        .map(|frame| CompressedBlock::decode(frame).unwrap())
        .collect();
    assert_eq!(blocks.len(), 2);
    let base = compressor.config().seed;
    assert_eq!(blocks[0].sampling_seed, derive_block_seed(base, 0));
    assert_eq!(blocks[1].sampling_seed, derive_block_seed(base, 1));
    assert_ne!(
        blocks[0].sampling_seed, blocks[1].sampling_seed,
        "distinct blocks must not share a noise realisation"
    );
    // Seed derivation is stable across processes (documented contract).
    assert_eq!(derive_block_seed(1, 0), derive_block_seed(1, 0));
    assert_ne!(derive_block_seed(1, 0), derive_block_seed(2, 0));
}

#[test]
fn parallel_and_sequential_compression_are_bit_identical() {
    // Smooth fields keep the untrained VAE's hyper-latents inside the
    // entropy models' symbol range; 32 timesteps -> 4 windows of 8.
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 32, 16, 16), 19);
    let variable = &ds.variables[0];

    let compressor = untrained_compressor();
    let sz = SzCompressor::new();
    let vae = Vae::new(VaeConfig::tiny());
    let vaesr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, &vae, None);
    let codecs: [&dyn Codec; 3] = [&compressor, &sz, &vaesr];

    for codec in codecs {
        for target in [None, Some(ErrorTarget::Nrmse(1e-2))] {
            let (par, par_stats) = codec.compress_variable(variable, 8, target);
            let (seq, seq_stats) = codec.compress_variable_sequential(variable, 8, target);
            assert_eq!(
                par.encode(),
                seq.encode(),
                "{}: parallel container differs from sequential",
                codec.name()
            );
            assert_eq!(par_stats.compressed_bytes, seq_stats.compressed_bytes);
            assert_eq!(par_stats.nrmse, seq_stats.nrmse, "{}", codec.name());
            assert_eq!(
                par_stats.compression_ratio,
                seq_stats.compression_ratio,
                "{}",
                codec.name()
            );
        }
    }
}
