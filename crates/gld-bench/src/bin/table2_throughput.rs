//! Regenerates Table 2: encoding and decoding throughput (MB/s) of the
//! diffusion-based compressors.  The paper reports A100 / RTX-2080 GPU
//! numbers; this reproduction measures single-core CPU wall-clock for the
//! same pipelines, so only the *relative* ordering is expected to transfer:
//! latent-space diffusion (Ours) decodes far faster than data-space
//! diffusion (CDC/GCD analogues), and fewer denoising steps decode
//! proportionally faster.
//!
//! Every method is timed through the unified [`Codec`] interface — one
//! compress/decompress call path, byte frames in, byte frames out.

use gld_bench::{train_on, write_result};
use gld_core::{Codec, LearnedBaseline, LearnedBaselineKind, StreamConfig};
use gld_datasets::DatasetKind;
use gld_diffusion::{ConditionalDiffusion, DiffusionConfig};
use gld_tensor::Tensor;
use std::time::Instant;

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

fn time<F: FnMut()>(mut f: F, repeats: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        f();
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

/// Times one codec through the trait: returns `(encode MB/s, decode MB/s)`.
fn throughput(
    codec: &dyn Codec,
    block: &Tensor,
    enc_repeats: usize,
    dec_repeats: usize,
) -> (f64, f64) {
    let raw_mb = mb(block.numel() * 4);
    let frame = codec.compress_block(block, None);
    let enc = time(
        || {
            let _ = codec.compress_block(block, None);
        },
        enc_repeats,
    );
    let dec = time(
        || {
            let _ = codec.decompress_block(&frame);
        },
        dec_repeats,
    );
    (raw_mb / enc, raw_mb / dec)
}

fn main() {
    let (mut compressor, dataset) = train_on(DatasetKind::S3d, 707);
    let n = compressor.config().block_frames;
    let block: Tensor = dataset.variables[0].frames.slice_axis(0, 0, n);
    // Data-space refinement model used by the CDC/GCD analogues (pixel-space
    // diffusion: same architecture, 1 input channel, full resolution).
    let refiner = ConditionalDiffusion::new(DiffusionConfig {
        latent_channels: 1,
        model_channels: 12,
        heads: 2,
        time_embed_dim: 16,
        train_steps: 200,
        seed: 1,
    });

    println!("Table 2 — encode/decode throughput (single-core CPU, MB/s)\n");
    println!(
        "{:<22} {:>18} {:>18}",
        "method", "encode (MB/s)", "decode (MB/s)"
    );
    let mut csv = String::from("method,encode_mbps,decode_mbps\n");
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // CDC / GCD analogues: every frame's latent is stored; decode runs the
    // pixel-space refinement.
    for kind in [
        LearnedBaselineKind::CdcX,
        LearnedBaselineKind::CdcEps,
        LearnedBaselineKind::Gcd,
    ] {
        let baseline = LearnedBaseline::new(kind, compressor.vae(), Some(&refiner));
        let (enc, dec) = throughput(&baseline, &block, 2, 1);
        rows.push((baseline.kind().name().to_string(), enc, dec));
    }

    // Ours at several denoising-step counts.
    for steps in [128usize, 32, 8] {
        compressor.set_denoising_steps(steps);
        let (enc, dec) = throughput(&compressor, &block, 1, 1);
        rows.push((format!("Ours-{steps} steps"), enc, dec));
    }

    for (name, enc, dec) in &rows {
        println!("{name:<22} {enc:>18.2} {dec:>18.2}");
        csv.push_str(&format!("{name},{enc:.3},{dec:.3}\n"));
    }

    // Ordering checks corresponding to the paper's claims.
    let ours8 = rows.iter().find(|r| r.0 == "Ours-8 steps").unwrap();
    let gcd = rows.iter().find(|r| r.0 == "GCD").unwrap();
    println!(
        "\nOurs-8 decodes {:.1}x faster than the GCD analogue (paper: ~200x on A100; the gap here reflects CPU scale).",
        ours8.2 / gcd.2
    );

    // Variable-level encode no longer buffers every window before packing:
    // the streaming block executor compresses windows on the pool and emits
    // frames in temporal order with at most `queue_depth` blocks resident.
    let config = StreamConfig::default();
    let variable = &dataset.variables[0];
    let start = Instant::now();
    let (_, stats, metrics) = compressor.compress_variable_streaming(variable, n, None, config);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "streaming variable encode: {:.2} MB/s over {} blocks (peak resident {} of queue depth {})",
        mb(stats.original_bytes) / secs,
        stats.blocks,
        metrics.peak_resident,
        config.queue_depth
    );
    write_result("table2_throughput.csv", &csv);
}
