//! The process-global metric registry: named histograms, counters, and
//! gauges, each optionally labelled, rendered as Prometheus text
//! exposition (format 0.0.4).
//!
//! Handles are `Arc`s resolved once (typically into a `OnceLock` at the
//! instrumentation site) so the hot path never touches the registry lock.
//! Families and label sets are registered on first use; re-requesting the
//! same `(family, labels)` pair returns the same instrument.

use crate::hist::Histogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct Entry<T> {
    family: String,
    labels: String,
    instrument: Arc<T>,
}

/// A registry of named instruments.  One process-global instance lives
/// behind [`global`]; tests may build private ones.
#[derive(Default)]
pub struct Registry {
    hists: Mutex<Vec<Entry<Histogram>>>,
    counters: Mutex<Vec<Entry<Counter>>>,
    gauges: Mutex<Vec<Entry<Gauge>>>,
}

/// Canonical `key1="v1",key2="v2"` form of a label set.
fn label_string(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

fn get_or_insert<T: Default>(
    entries: &Mutex<Vec<Entry<T>>>,
    family: &str,
    labels: &[(&str, &str)],
) -> Arc<T> {
    let labels = label_string(labels);
    let mut entries = entries.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = entries
        .iter()
        .find(|e| e.family == family && e.labels == labels)
    {
        return Arc::clone(&entry.instrument);
    }
    let instrument = Arc::new(T::default());
    entries.push(Entry {
        family: family.to_string(),
        labels,
        instrument: Arc::clone(&instrument),
    });
    instrument
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The histogram for `(family, labels)`, registered on first use.
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        get_or_insert(&self.hists, family, labels)
    }

    /// The counter for `(family, labels)`, registered on first use.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_insert(&self.counters, family, labels)
    }

    /// The gauge for `(family, labels)`, registered on first use.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_insert(&self.gauges, family, labels)
    }

    /// Every registered histogram as `(family, labels, snapshot)`.
    pub fn histogram_snapshots(&self) -> Vec<(String, String, crate::HistogramSnapshot)> {
        let hists = self.hists.lock().unwrap_or_else(|e| e.into_inner());
        hists
            .iter()
            .map(|e| (e.family.clone(), e.labels.clone(), e.instrument.snapshot()))
            .collect()
    }

    /// Renders every instrument in Prometheus text exposition format:
    /// `# TYPE` lines per family, `_bucket{le=...}`/`_sum`/`_count` series
    /// per histogram (non-empty buckets only, `le` in integer nanoseconds),
    /// plus a derived `<family>_quantile{q=...}` gauge family carrying the
    /// interpolated p50/p90/p99/p99.9 so scrapers need no bucket math.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // Series are grouped by family (one `# TYPE` line each), sorted so
        // late-registered label sets of an existing family do not split it.
        let mut scalars: Vec<(String, String, String, &str)> = Vec::new();
        {
            let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            for entry in counters.iter() {
                scalars.push((
                    entry.family.clone(),
                    entry.labels.clone(),
                    entry.instrument.get().to_string(),
                    "counter",
                ));
            }
        }
        {
            let gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for entry in gauges.iter() {
                scalars.push((
                    entry.family.clone(),
                    entry.labels.clone(),
                    entry.instrument.get().to_string(),
                    "gauge",
                ));
            }
        }
        scalars.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut last_family = String::new();
        for (family, labels, value, kind) in &scalars {
            if *family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.clone();
            }
            out.push_str(&render_line(family, "", labels, value));
        }
        let mut hists = self.histogram_snapshots();
        hists.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut last_family = String::new();
        for (family, labels, snapshot) in &hists {
            if *family != last_family {
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = family.clone();
            }
            for (le, cum) in snapshot.cumulative_nonzero() {
                let le_label = join_labels(labels, &format!("le=\"{le}\""));
                out.push_str(&render_line(family, "_bucket", &le_label, &cum.to_string()));
            }
            let inf_label = join_labels(labels, "le=\"+Inf\"");
            out.push_str(&render_line(
                family,
                "_bucket",
                &inf_label,
                &snapshot.count.to_string(),
            ));
            out.push_str(&render_line(
                family,
                "_sum",
                labels,
                &snapshot.sum.to_string(),
            ));
            out.push_str(&render_line(
                family,
                "_count",
                labels,
                &snapshot.count.to_string(),
            ));
        }
        // Derived quantile gauges come after every histogram family so no
        // family's series are split by another's.
        let mut last_family = String::new();
        for (family, labels, snapshot) in &hists {
            if *family != last_family {
                out.push_str(&format!("# TYPE {family}_quantile gauge\n"));
                last_family = family.clone();
            }
            for (q, value) in [
                ("0.5", snapshot.p50()),
                ("0.9", snapshot.p90()),
                ("0.99", snapshot.p99()),
                ("0.999", snapshot.p999()),
            ] {
                let q_label = join_labels(labels, &format!("q=\"{q}\""));
                out.push_str(&render_line(
                    family,
                    "_quantile",
                    &q_label,
                    &value.to_string(),
                ));
            }
        }
        out
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

fn render_line(family: &str, suffix: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{family}{suffix} {value}\n")
    } else {
        format!("{family}{suffix}{{{labels}}} {value}\n")
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand: a histogram from the [`global`] registry.
pub fn histogram(family: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(family, labels)
}

/// Shorthand: a counter from the [`global`] registry.
pub fn counter(family: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(family, labels)
}

/// Shorthand: a gauge from the [`global`] registry.
pub fn gauge(family: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(family, labels)
}

/// Extracts one sample value from rendered exposition text: the line whose
/// name is `family` (plus `suffix`, e.g. `"_quantile"`) and whose label
/// block contains every `needle` given.  The parser the bench and CI
/// scrapers share, so "scraping the endpoint" never regex-drifts from the
/// renderer.
pub fn scrape_value(text: &str, family: &str, suffix: &str, needles: &[&str]) -> Option<f64> {
    let name = format!("{family}{suffix}");
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ')?;
        let (line_name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n, rest.trim_end_matches('}')),
            None => (series, ""),
        };
        if line_name != name {
            continue;
        }
        if needles.iter().all(|n| labels.contains(n)) {
            return value.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_family_and_labels_share_the_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("op", "ping")]);
        let b = r.counter("x_total", &[("op", "ping")]);
        let c = r.counter("x_total", &[("op", "status")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn render_and_scrape_round_trip() {
        let r = Registry::new();
        r.counter("demo_total", &[("op", "ping")]).add(7);
        r.gauge("demo_active", &[]).set(3);
        let h = r.histogram("demo_ns", &[("op", "ping")]);
        for v in [10u64, 100, 1000, 10_000] {
            h.record(v);
        }
        let text = r.render();
        assert_eq!(
            scrape_value(&text, "demo_total", "", &["op=\"ping\""]),
            Some(7.0)
        );
        assert_eq!(scrape_value(&text, "demo_active", "", &[]), Some(3.0));
        assert_eq!(
            scrape_value(&text, "demo_ns", "_count", &["op=\"ping\""]),
            Some(4.0)
        );
        let p50 = scrape_value(&text, "demo_ns", "_quantile", &["op=\"ping\"", "q=\"0.5\""]);
        assert!(p50.is_some());
        // Cumulative buckets are non-decreasing and end at the count.
        let mut last = 0.0;
        for line in text.lines() {
            if line.starts_with("demo_ns_bucket") {
                let v: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(v >= last);
                last = v;
            }
        }
        assert_eq!(last, 4.0);
    }
}
