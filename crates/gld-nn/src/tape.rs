//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation performed on its [`Var`]s.  Calling
//! [`Var::backward`] walks the tape in reverse, accumulating gradients into
//! the tape nodes and depositing them into any bound [`Parameter`]s.
//!
//! The op set is intentionally small — exactly the operations needed by the
//! VAE, the hyperprior and the space-time UNet — and every backward rule is
//! checked against finite differences in this module's tests.

use crate::param::Parameter;
use gld_tensor::conv::{col2im, im2col, nchw, Conv2dGeometry};
use gld_tensor::pool::{
    avg_pool2d, avg_pool2d_backward, upsample_nearest2d, upsample_nearest2d_backward,
};
use gld_tensor::tensor::matmul_block;
use gld_tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    param: Option<Parameter>,
}

/// A recording tape for reverse-mode differentiation.
///
/// Tapes are cheap to create; the training loops in `gld-vae` and
/// `gld-diffusion` build a fresh tape for every step.
#[derive(Clone)]
pub struct Tape {
    nodes: Rc<RefCell<Vec<Node>>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, node: Node) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(node);
        Var {
            tape: self.clone(),
            id,
        }
    }

    /// Records a constant (non-differentiable) input.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(Node {
            value,
            parents: vec![],
            backward: None,
            param: None,
        })
    }

    /// Records a differentiable leaf whose gradient is discarded after
    /// `backward` (useful in tests).
    pub fn leaf(&self, value: Tensor) -> Var {
        self.constant(value)
    }

    /// Records a leaf bound to a [`Parameter`]; `backward` accumulates the
    /// leaf's gradient into the parameter.
    pub fn param(&self, p: &Parameter) -> Var {
        self.push(Node {
            value: p.value(),
            parents: vec![],
            backward: None,
            param: Some(p.clone()),
        })
    }

    /// Concatenates variables along `axis`.
    pub fn concat(&self, vars: &[&Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "concat of zero vars");
        let values: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let extents: Vec<usize> = values.iter().map(|v| v.dim(axis)).collect();
        let parents: Vec<usize> = vars.iter().map(|v| v.id).collect();
        self.push(Node {
            value: out,
            parents,
            backward: Some(Box::new(move |g: &Tensor| {
                let mut grads = Vec::with_capacity(extents.len());
                let mut start = 0usize;
                for &e in &extents {
                    grads.push(g.slice_axis(axis, start, start + e));
                    start += e;
                }
                grads
            })),
            param: None,
        })
    }
}

/// A differentiable value recorded on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

/// Sums `grad` down to `target_dims` (undoing NumPy-style broadcasting) so
/// that each parent of a broadcasting op receives a gradient of its own
/// shape.
pub fn reduce_to_shape(grad: &Tensor, target_dims: &[usize]) -> Tensor {
    if grad.dims() == target_dims {
        return grad.clone();
    }
    let mut g = grad.clone();
    // Remove leading broadcast dimensions.
    while g.rank() > target_dims.len() {
        g = g.sum_axis(0, false);
    }
    // Sum over axes where the target extent is 1.
    for (axis, &dim) in target_dims.iter().enumerate() {
        if dim == 1 && g.dim(axis) != 1 {
            g = g.sum_axis(axis, true);
        }
    }
    assert_eq!(
        g.dims(),
        target_dims,
        "reduce_to_shape failed: {:?} -> {:?}",
        grad.dims(),
        target_dims
    );
    g
}

impl Var {
    /// The node id on the tape (useful for debugging).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tape this variable is recorded on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// A snapshot of the value.
    pub fn value(&self) -> Tensor {
        self.tape.nodes.borrow()[self.id].value.clone()
    }

    /// The dimension extents of the value.
    pub fn dims(&self) -> Vec<usize> {
        self.tape.nodes.borrow()[self.id].value.dims().to_vec()
    }

    /// Extent of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.tape.nodes.borrow()[self.id].value.dim(axis)
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.tape.nodes.borrow()[self.id].value.numel()
    }

    fn unary(&self, value: Tensor, backward: impl Fn(&Tensor) -> Tensor + 'static) -> Var {
        self.tape.push(Node {
            value,
            parents: vec![self.id],
            backward: Some(Box::new(move |g| vec![backward(g)])),
            param: None,
        })
    }

    fn binary(
        &self,
        other: &Var,
        value: Tensor,
        backward: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape.nodes, &other.tape.nodes),
            "variables must live on the same tape"
        );
        self.tape.push(Node {
            value,
            parents: vec![self.id, other.id],
            backward: Some(Box::new(move |g| {
                let (ga, gb) = backward(g);
                vec![ga, gb]
            })),
            param: None,
        })
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic (broadcasting)
    // ------------------------------------------------------------------

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
        let value = a.add(&b);
        self.binary(other, value, move |g| {
            (reduce_to_shape(g, &da), reduce_to_shape(g, &db))
        })
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
        let value = a.sub(&b);
        self.binary(other, value, move |g| {
            (reduce_to_shape(g, &da), reduce_to_shape(&g.neg(), &db))
        })
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
        let value = a.mul(&b);
        let (ac, bc) = (a.clone(), b.clone());
        self.binary(other, value, move |g| {
            (
                reduce_to_shape(&g.mul(&bc), &da),
                reduce_to_shape(&g.mul(&ac), &db),
            )
        })
    }

    /// Element-wise division with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
        let value = a.div(&b);
        let (ac, bc) = (a.clone(), b.clone());
        self.binary(other, value, move |g| {
            let ga = g.div(&bc);
            let gb = g.mul(&ac).div(&bc.square()).neg();
            (reduce_to_shape(&ga, &da), reduce_to_shape(&gb, &db))
        })
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.unary(self.value().neg(), |g| g.neg())
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&self, s: f32) -> Var {
        self.unary(self.value().scale(s), move |g| g.scale(s))
    }

    /// Addition of a constant scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        self.unary(self.value().add_scalar(s), |g| g.clone())
    }

    // ------------------------------------------------------------------
    // Activations and element-wise math
    // ------------------------------------------------------------------

    /// ReLU activation.
    pub fn relu(&self) -> Var {
        let x = self.value();
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        self.unary(x.relu(), move |g| g.mul(&mask))
    }

    /// SiLU activation (`x · σ(x)`).
    pub fn silu(&self) -> Var {
        let x = self.value();
        let sig = x.sigmoid();
        let deriv = sig.mul(&x.mul(&sig.neg().add_scalar(1.0)).add_scalar(1.0));
        self.unary(x.silu(), move |g| g.mul(&deriv))
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&self) -> Var {
        let x = self.value();
        let c = (2.0 / std::f32::consts::PI).sqrt();
        let u = x.map(move |v| c * (v + 0.044715 * v * v * v));
        let t = u.tanh();
        let deriv = {
            let one_plus_t = t.add_scalar(1.0);
            let sech2 = t.square().neg().add_scalar(1.0);
            let du = x.map(move |v| c * (1.0 + 3.0 * 0.044715 * v * v));
            one_plus_t
                .scale(0.5)
                .add(&x.mul(&sech2).mul(&du).scale(0.5))
        };
        self.unary(x.gelu(), move |g| g.mul(&deriv))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let s = self.value().sigmoid();
        let deriv = s.mul(&s.neg().add_scalar(1.0));
        self.unary(s.clone(), move |g| g.mul(&deriv))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let t = self.value().tanh();
        let deriv = t.square().neg().add_scalar(1.0);
        self.unary(t.clone(), move |g| g.mul(&deriv))
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let e = self.value().exp();
        let ec = e.clone();
        self.unary(e, move |g| g.mul(&ec))
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Var {
        let x = self.value();
        let inv = x.map(|v| 1.0 / v);
        self.unary(x.ln(), move |g| g.mul(&inv))
    }

    /// Element-wise square.
    pub fn square(&self) -> Var {
        let x = self.value();
        let two_x = x.scale(2.0);
        self.unary(x.square(), move |g| g.mul(&two_x))
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Var {
        let s = self.value().sqrt();
        let deriv = s.map(|v| 0.5 / v.max(1e-12));
        self.unary(s.clone(), move |g| g.mul(&deriv))
    }

    /// Element-wise absolute value (sub-gradient 0 at zero).
    pub fn abs(&self) -> Var {
        let x = self.value();
        let sign = x.map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        });
        self.unary(x.abs(), move |g| g.mul(&sign))
    }

    /// Softmax along the last axis.
    pub fn softmax_last(&self) -> Var {
        let s = self.value().softmax_last();
        let sc = s.clone();
        self.unary(s, move |g| {
            let rank = sc.rank();
            let weighted = g.mul(&sc);
            let sum = weighted.sum_axis(rank - 1, true);
            g.sub(&sum).mul(&sc)
        })
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Reshape to new dimensions (same element count).
    pub fn reshape(&self, dims: &[usize]) -> Var {
        let old = self.dims();
        self.unary(self.value().reshape(dims), move |g| g.reshape(&old))
    }

    /// Permutes dimensions.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let perm_v = perm.to_vec();
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        self.unary(self.value().permute(&perm_v), move |g| g.permute(&inverse))
    }

    /// Slices the half-open range `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Var {
        let dims = self.dims();
        self.unary(self.value().slice_axis(axis, start, end), move |g| {
            // Embed the gradient back into a zero tensor of the input shape.
            let mut full = Tensor::zeros(&dims);
            let indices: Vec<usize> = (start..end).collect();
            full.index_assign(axis, &indices, g);
            full
        })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements as a scalar variable.
    pub fn sum(&self) -> Var {
        let dims = self.dims();
        self.unary(Tensor::scalar(self.value().sum()), move |g| {
            Tensor::full(&dims, g.item())
        })
    }

    /// Mean of all elements as a scalar variable.
    pub fn mean(&self) -> Var {
        let dims = self.dims();
        let n: usize = dims.iter().product();
        self.unary(Tensor::scalar(self.value().mean()), move |g| {
            Tensor::full(&dims, g.item() / n as f32)
        })
    }

    /// Sum along one axis.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Var {
        let dims = self.dims();
        self.unary(self.value().sum_axis(axis, keepdim), move |g| {
            let g = if keepdim {
                g.clone()
            } else {
                // Reinsert the reduced axis so broadcasting works.
                let mut d = g.dims().to_vec();
                d.insert(axis, 1);
                g.reshape(&d)
            };
            g.broadcast_to(&dims)
        })
    }

    /// Mean along one axis.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Var {
        let n = self.dim(axis) as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication (rank-2×2 or batched rank-3×3, with batch
    /// broadcasting of a singleton batch).
    pub fn matmul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.matmul(&b);
        let (ac, bc) = (a.clone(), b.clone());
        match (a.rank(), b.rank()) {
            (2, 2) => self.binary(other, value, move |g| {
                let ga = g.matmul(&bc.transpose2());
                let gb = ac.transpose2().matmul(g);
                (ga, gb)
            }),
            (3, 3) => {
                let (ba, bb) = (a.dim(0), b.dim(0));
                self.binary(other, value, move |g| {
                    let bt = bc.permute(&[0, 2, 1]);
                    let at = ac.permute(&[0, 2, 1]);
                    let mut ga = g.matmul(&bt);
                    let mut gb = at.matmul(g);
                    // Undo batch broadcasting.
                    if ba == 1 && ga.dim(0) != 1 {
                        ga = ga.sum_axis(0, true);
                    }
                    if bb == 1 && gb.dim(0) != 1 {
                        gb = gb.sum_axis(0, true);
                    }
                    (ga, gb)
                })
            }
            (ra, rb) => panic!("matmul supports rank 2×2 or 3×3, got {ra}×{rb}"),
        }
    }

    // ------------------------------------------------------------------
    // Convolution, normalisation, resampling
    // ------------------------------------------------------------------

    /// 2-D convolution (NCHW input, `[out_c, in_c, kh, kw]` weight, optional
    /// bias of length `out_c`).
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, geom: Conv2dGeometry) -> Var {
        let x = self.value();
        let w = weight.value();
        let (b, c, h, wd) = nchw(&x);
        let out_c = w.dim(0);
        let (oh, ow) = geom.output_size(h, wd);
        let k = c * geom.kh * geom.kw;
        let n = oh * ow;
        let cols = im2col(&x, geom); // [b, k, n]
        let wmat = w.reshape(&[out_c, k]);
        let mut out = vec![0.0f32; b * out_c * n];
        for bi in 0..b {
            let colb = &cols.data()[bi * k * n..(bi + 1) * k * n];
            matmul_block(
                wmat.data(),
                colb,
                &mut out[bi * out_c * n..(bi + 1) * out_c * n],
                out_c,
                k,
                n,
            );
        }
        let mut value = Tensor::from_vec(out, &[b, out_c, oh, ow]);
        if let Some(bias) = bias {
            let bvec = bias.value();
            value = value.add(&bvec.reshape(&[1, out_c, 1, 1]));
        }

        let cols_saved = cols;
        let w_saved = w.clone();
        let geom_saved = geom;
        let weight_dims = w.dims().to_vec();
        let (input_h, input_w) = (h, wd);
        let mut parents = vec![self.id, weight.id];
        if let Some(bv) = bias {
            parents.push(bv.id);
        }
        let has_bias = bias.is_some();
        self.tape.push(Node {
            value,
            parents,
            backward: Some(Box::new(move |g: &Tensor| {
                let gb_dims = g.dims();
                let (bsz, oc, goh, gow) = (gb_dims[0], gb_dims[1], gb_dims[2], gb_dims[3]);
                let n = goh * gow;
                let k = weight_dims[1] * weight_dims[2] * weight_dims[3];
                // grad wrt weight: sum_b g_b [oc, n] @ cols_b^T [n, k]
                let mut gw = vec![0.0f32; oc * k];
                let mut gcols = vec![0.0f32; bsz * k * n];
                let wmat = w_saved.reshape(&[oc, k]);
                // Transpose weight once: [k, oc]
                let wt = wmat.transpose2();
                for bi in 0..bsz {
                    let gb = &g.data()[bi * oc * n..(bi + 1) * oc * n];
                    let colb = &cols_saved.data()[bi * k * n..(bi + 1) * k * n];
                    // gw[o, kk] += sum_j gb[o, j] * colb[kk, j], computed with
                    // explicit loops to avoid materialising colbᵀ.
                    for o in 0..oc {
                        let grow = &gb[o * n..(o + 1) * n];
                        for kk in 0..k {
                            let crow = &colb[kk * n..(kk + 1) * n];
                            let mut acc = 0.0f32;
                            for j in 0..n {
                                acc += grow[j] * crow[j];
                            }
                            gw[o * k + kk] += acc;
                        }
                    }
                    // gcols_b = wt [k, oc] @ gb [oc, n]
                    matmul_block(
                        wt.data(),
                        gb,
                        &mut gcols[bi * k * n..(bi + 1) * k * n],
                        k,
                        oc,
                        n,
                    );
                }
                let gcols_t = Tensor::from_vec(gcols, &[bsz, k, n]);
                let gx = col2im(&gcols_t, geom_saved, weight_dims[1], input_h, input_w);
                let gw_t = Tensor::from_vec(gw, &weight_dims);
                let mut grads = vec![gx, gw_t];
                if has_bias {
                    let gbias = g.sum_axis(3, false).sum_axis(2, false).sum_axis(0, false);
                    grads.push(gbias);
                }
                grads
            })),
            param: None,
        })
    }

    /// Group normalisation over an NCHW tensor with affine parameters
    /// `gamma`/`beta` of length `C`.
    pub fn group_norm(&self, groups: usize, gamma: &Var, beta: &Var, eps: f32) -> Var {
        let x = self.value();
        let (b, c, h, w) = nchw(&x);
        assert!(
            c % groups == 0,
            "channels {c} not divisible by groups {groups}"
        );
        let cg = c / groups;
        let group_elems = cg * h * w;
        let gamma_v = gamma.value();
        let beta_v = beta.value();
        assert_eq!(gamma_v.numel(), c, "gamma length must equal channels");
        assert_eq!(beta_v.numel(), c, "beta length must equal channels");

        // Forward: per (batch, group) statistics.
        let mut xhat = vec![0.0f32; x.numel()];
        let mut inv_std = vec![0.0f32; b * groups];
        let src = x.data();
        for bi in 0..b {
            for gi in 0..groups {
                let start_c = gi * cg;
                let mut mean = 0.0f64;
                for ci in start_c..start_c + cg {
                    for i in 0..h * w {
                        mean += src[((bi * c + ci) * h * w) + i] as f64;
                    }
                }
                mean /= group_elems as f64;
                let mut var = 0.0f64;
                for ci in start_c..start_c + cg {
                    for i in 0..h * w {
                        let d = src[((bi * c + ci) * h * w) + i] as f64 - mean;
                        var += d * d;
                    }
                }
                var /= group_elems as f64;
                let istd = 1.0 / (var + eps as f64).sqrt();
                inv_std[bi * groups + gi] = istd as f32;
                for ci in start_c..start_c + cg {
                    for i in 0..h * w {
                        let idx = ((bi * c + ci) * h * w) + i;
                        xhat[idx] = ((src[idx] as f64 - mean) * istd) as f32;
                    }
                }
            }
        }
        let xhat_t = Tensor::from_vec(xhat, &[b, c, h, w]);
        let value = xhat_t
            .mul(&gamma_v.reshape(&[1, c, 1, 1]))
            .add(&beta_v.reshape(&[1, c, 1, 1]));

        let xhat_saved = xhat_t;
        let gamma_saved = gamma_v;
        let inv_std_saved = inv_std;
        self.tape.push(Node {
            value,
            parents: vec![self.id, gamma.id, beta.id],
            backward: Some(Box::new(move |g: &Tensor| {
                let dims = g.dims();
                let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
                let cg = c / (inv_std_saved.len() / b);
                let groups = c / cg;
                let group_elems = (cg * h * w) as f32;
                // Affine parameter gradients.
                let gxhat = g.mul(&gamma_saved.reshape(&[1, c, 1, 1]));
                let dgamma = g
                    .mul(&xhat_saved)
                    .sum_axis(3, false)
                    .sum_axis(2, false)
                    .sum_axis(0, false);
                let dbeta = g.sum_axis(3, false).sum_axis(2, false).sum_axis(0, false);
                // Input gradient per (batch, group).
                let mut dx = vec![0.0f32; g.numel()];
                let gx = gxhat.data();
                let xh = xhat_saved.data();
                for bi in 0..b {
                    for gi in 0..groups {
                        let istd = inv_std_saved[bi * groups + gi];
                        let start_c = gi * cg;
                        let mut sum_g = 0.0f64;
                        let mut sum_gx = 0.0f64;
                        for ci in start_c..start_c + cg {
                            for i in 0..h * w {
                                let idx = ((bi * c + ci) * h * w) + i;
                                sum_g += gx[idx] as f64;
                                sum_gx += gx[idx] as f64 * xh[idx] as f64;
                            }
                        }
                        let sum_g = sum_g as f32;
                        let sum_gx = sum_gx as f32;
                        for ci in start_c..start_c + cg {
                            for i in 0..h * w {
                                let idx = ((bi * c + ci) * h * w) + i;
                                dx[idx] = istd / group_elems
                                    * (group_elems * gx[idx] - sum_g - xh[idx] * sum_gx);
                            }
                        }
                    }
                }
                vec![
                    Tensor::from_vec(dx, &[b, c, h, w]),
                    dgamma.reshape(gamma_saved.dims()),
                    dbeta.reshape(gamma_saved.dims()),
                ]
            })),
            param: None,
        })
    }

    /// Average pooling with a square window.
    pub fn avg_pool2d(&self, k: usize) -> Var {
        let x = self.value();
        let (_, _, h, w) = nchw(&x);
        self.unary(avg_pool2d(&x, k), move |g| avg_pool2d_backward(g, k, h, w))
    }

    /// Nearest-neighbour upsampling by an integer factor.
    pub fn upsample_nearest2d(&self, factor: usize) -> Var {
        let x = self.value();
        self.unary(upsample_nearest2d(&x, factor), move |g| {
            upsample_nearest2d_backward(g, factor)
        })
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this (scalar) variable,
    /// accumulating gradients into every bound [`Parameter`].
    ///
    /// Returns the gradient of each tape node so callers (and tests) can
    /// inspect gradients of non-parameter leaves: `grads[var.id()]`.
    pub fn backward(&self) -> Vec<Option<Tensor>> {
        let nodes = self.tape.nodes.borrow();
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        let seed = Tensor::full(nodes[self.id].value.dims(), 1.0);
        grads[self.id] = Some(seed);
        for id in (0..=self.id).rev() {
            let Some(grad) = grads[id].clone() else {
                continue;
            };
            let node = &nodes[id];
            if let Some(backward) = &node.backward {
                let parent_grads = backward(&grad);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward returned {} grads for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (pid, pg) in node.parents.iter().zip(parent_grads) {
                    match &mut grads[*pid] {
                        Some(existing) => existing.add_assign(&pg),
                        slot => *slot = Some(pg),
                    }
                }
            }
            if let Some(param) = &node.param {
                param.accumulate_grad(&grad);
            }
        }
        grads
    }
}
