//! Compressed-stream headers shared by the rule-based codecs.

use gld_tensor::Tensor;

/// Magic byte identifying the codec that produced a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Prediction-based (SZ3-like) stream.
    SzLike = 1,
    /// Transform-based (ZFP-like) stream.
    ZfpLike = 2,
}

impl Codec {
    fn from_u8(v: u8) -> Codec {
        match v {
            1 => Codec::SzLike,
            2 => Codec::ZfpLike,
            other => panic!("unknown codec id {other}"),
        }
    }
}

/// Header describing the original tensor and the error bound used.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockHeader {
    /// Which codec wrote the stream.
    pub codec: Codec,
    /// Original tensor dimensions (up to 4; unused entries are 0).
    pub dims: Vec<usize>,
    /// Absolute error bound used at compression time.
    pub abs_error: f32,
}

impl BlockHeader {
    /// Creates a header for a tensor.
    pub fn new(codec: Codec, data: &Tensor, abs_error: f32) -> Self {
        assert!(
            data.rank() >= 1 && data.rank() <= 4,
            "rule-based codecs support rank 1–4, got {}",
            data.rank()
        );
        BlockHeader {
            codec,
            dims: data.dims().to_vec(),
            abs_error,
        }
    }

    /// Serialised header size in bytes.
    pub fn byte_len(&self) -> usize {
        1 + 1 + self.dims.len() * 4 + 4
    }

    /// Writes the header at the start of `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(self.codec as u8);
        out.push(self.dims.len() as u8);
        for &d in &self.dims {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.abs_error.to_le_bytes());
    }

    /// Reads a header, returning it and the number of bytes consumed.
    pub fn read(bytes: &[u8]) -> (Self, usize) {
        assert!(bytes.len() >= 2, "truncated header");
        let codec = Codec::from_u8(bytes[0]);
        let rank = bytes[1] as usize;
        let mut off = 2;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize);
            off += 4;
        }
        let abs_error = f32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        (
            BlockHeader {
                codec,
                dims,
                abs_error,
            },
            off,
        )
    }

    /// Total element count of the described tensor.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let t = Tensor::zeros(&[3, 16, 16]);
        let h = BlockHeader::new(Codec::SzLike, &t, 1e-3);
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), h.byte_len());
        let (back, used) = BlockHeader::read(&buf);
        assert_eq!(used, buf.len());
        assert_eq!(back, h);
        assert_eq!(back.numel(), 3 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "unknown codec")]
    fn unknown_codec_rejected() {
        let bytes = [99u8, 1, 4, 0, 0, 0, 0, 0, 0, 0];
        let _ = BlockHeader::read(&bytes);
    }
}
