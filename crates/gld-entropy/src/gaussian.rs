//! Normal-distribution utilities used by the Gaussian conditional entropy
//! model (paper Eq. 1–2) and by the rate estimates in `gld-vae`.

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e-7, ample for frequency quantisation).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// CDF of a normal distribution with the given mean and standard deviation.
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    let std = std.max(1e-9);
    std_normal_cdf((x - mean) / std)
}

/// Probability mass that a `N(mean, std²)` variable convolved with
/// `U(-0.5, 0.5)` rounds to the integer `k` — i.e. the probability of the
/// quantised latent value `k` under the paper's Eq. 1.
pub fn quantized_gaussian_pmf(k: i64, mean: f64, std: f64) -> f64 {
    let upper = normal_cdf(k as f64 + 0.5, mean, std);
    let lower = normal_cdf(k as f64 - 0.5, mean, std);
    (upper - lower).max(0.0)
}

/// Information content of the quantised value `k` in bits,
/// `-log2 p(k | mean, std)`, floored so that degenerate probabilities do not
/// produce infinities (matches the clamp used by learned codecs).
pub fn quantized_gaussian_bits(k: i64, mean: f64, std: f64) -> f64 {
    let p = quantized_gaussian_pmf(k, mean, std).max(1e-12);
    -p.log2()
}

/// Differential entropy (in bits) of a normal with the given standard
/// deviation: `0.5 log2(2πeσ²)`.  Used as a sanity reference in tests.
pub fn normal_entropy_bits(std: f64) -> f64 {
    0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * std * std).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }

    #[test]
    fn cdf_symmetry_and_monotonicity() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(std_normal_cdf(-5.0) < 1e-5);
        let mut prev = 0.0;
        for i in -40..=40 {
            let c = std_normal_cdf(i as f64 / 10.0);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn pmf_sums_to_one_over_support() {
        for &(mean, std) in &[(0.0, 1.0), (3.7, 0.5), (-2.2, 4.0)] {
            let sum: f64 = (-200..=200)
                .map(|k| quantized_gaussian_pmf(k, mean, std))
                .sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "pmf sum {sum} for mean {mean} std {std}"
            );
        }
    }

    #[test]
    fn pmf_peaks_at_rounded_mean() {
        let mean = 2.3;
        let std = 0.8;
        let peak = quantized_gaussian_pmf(2, mean, std);
        for k in -10..=10 {
            assert!(quantized_gaussian_pmf(k, mean, std) <= peak + 1e-12);
        }
    }

    #[test]
    fn bits_track_distribution_width() {
        // Wider distributions cost more bits for the same symbol.
        let narrow = quantized_gaussian_bits(0, 0.0, 0.3);
        let wide = quantized_gaussian_bits(0, 0.0, 10.0);
        assert!(wide > narrow);
        // A symbol far in the tail is very expensive.
        assert!(quantized_gaussian_bits(50, 0.0, 1.0) > 30.0);
    }

    #[test]
    fn average_code_length_close_to_entropy() {
        // For a moderately wide quantised Gaussian the expected code length
        // should be within ~0.1 bits of the differential entropy.
        let std = 4.0;
        let expected_bits: f64 = (-100..=100)
            .map(|k| {
                let p = quantized_gaussian_pmf(k, 0.0, std);
                if p > 0.0 {
                    p * quantized_gaussian_bits(k, 0.0, std)
                } else {
                    0.0
                }
            })
            .sum();
        let reference = normal_entropy_bits(std);
        assert!(
            (expected_bits - reference).abs() < 0.1,
            "expected {expected_bits} vs differential entropy {reference}"
        );
    }
}
