//! x86-64 SIMD backends.
//!
//! [`Sse2Kernels`] uses only the x86-64 baseline instruction set (SSE2), so
//! it is unconditionally available; [`Avx2Kernels`] is gated on runtime
//! `is_x86_feature_detected!("avx2")` by the dispatcher in `lib.rs`.
//!
//! Everything here is bit-identical to `scalar.rs` by construction:
//!
//! * `f32::round` (half away from zero) is emulated as round-to-nearest-even
//!   plus an exact tie fix-up.  `d = x - rint(x)` is exact (Sterbenz), so
//!   `|d| == 0.5` detects ties without double rounding; ties resolve as
//!   `x + copysign(0.5, x)`, which is exact for every representable
//!   half-integer.  The naive `trunc(x + copysign(0.5, x))` would double
//!   round (e.g. `0.49999997f32`).  On SSE2 (no `roundps`) `rint` is
//!   `cvtdq2ps(cvtps2dq(x))` guarded by `|x| < 2^23` — larger magnitudes
//!   (and NaN, which fails the ordered compare) pass through unchanged,
//!   exactly like scalar `round`.  The SSE2 conversion uses the MXCSR
//!   rounding mode, which this workspace never changes from its
//!   round-to-nearest-even default.
//! * `cvtps2dq` differs from scalar `as i32` (INT_MIN sentinel vs
//!   saturation) only for values the `ok` mask already rejects, so the
//!   difference is never observable.
//! * Multiplies and adds are separate intrinsics — LLVM does not contract
//!   them into FMA without fast-math, so lane arithmetic matches scalar
//!   IEEE ops exactly, in the same association order.

use crate::{
    scalar, Backend, KernelBackend, SzPlane, SZ_MAX_CODE, SZ_UNPREDICTABLE, ZFP_ESCAPE,
    ZFP_MAX_CODE,
};
use std::arch::x86_64::*;

/// Baseline x86-64 vector kernels (SSE2 only, always available).  The
/// Lorenzo plane walk and the hash batch stay on the scalar path: both lean
/// on gathers / 32-bit lane multiplies that SSE2 lacks.
pub(crate) struct Sse2Kernels;

/// AVX2 kernels (runtime-detected): adds the gathered anti-diagonal Lorenzo
/// wavefront, 8-wide tile quantisation, 8-wide bin scan, 32-byte match
/// extension and the interleaved hash batch.
pub(crate) struct Avx2Kernels;

impl KernelBackend for Sse2Kernels {
    fn backend(&self) -> Backend {
        Backend::Sse2
    }

    fn zfp_transform(&self, block: &mut [f32; 64], basis: &[[f32; 4]; 4], inverse: bool) {
        // SAFETY: SSE2 is part of the x86-64 ABI.
        unsafe { zfp_transform_sse2(block, basis, inverse) }
    }

    fn zfp_quantize(
        &self,
        block: &[f32; 64],
        step: f32,
        codes: &mut [i32; 64],
        escapes: &mut Vec<i32>,
    ) {
        // SAFETY: SSE2 is part of the x86-64 ABI.
        unsafe { zfp_quantize_sse2(block, step, codes, escapes) }
    }

    fn find_bin(&self, cdf: &[u32], bin: usize, target: u32) -> usize {
        // SAFETY: SSE2 is part of the x86-64 ABI.
        unsafe { find_bin_sse2(cdf, bin, target) }
    }

    fn match_len(&self, a: &[u8], b: &[u8]) -> usize {
        // SAFETY: SSE2 is part of the x86-64 ABI.
        unsafe { match_len_sse2(a, b) }
    }
}

impl KernelBackend for Avx2Kernels {
    fn backend(&self) -> Backend {
        Backend::Avx2
    }

    fn sz_quantize_plane(&self, plane: &mut SzPlane<'_>) {
        // Gather offsets are 32-bit; a plane that large never occurs, but
        // degrade safely rather than truncate.
        if plane.d1 < 2 || plane.d2 < 2 || plane.d1 * plane.d2 > i32::MAX as usize {
            return scalar::sz_plane(plane);
        }
        // SAFETY: the dispatcher only hands out this backend when AVX2 is
        // detected; slice lengths are checked by the kernel's caller
        // contract (`SzPlane` invariants) and re-asserted inside.
        unsafe { sz_quantize_plane_avx2(plane) }
    }

    fn zfp_transform(&self, block: &mut [f32; 64], basis: &[[f32; 4]; 4], inverse: bool) {
        // The 4-point lines fit SSE registers exactly; AVX2 adds nothing.
        // SAFETY: SSE2 is part of the x86-64 ABI.
        unsafe { zfp_transform_sse2(block, basis, inverse) }
    }

    fn zfp_quantize(
        &self,
        block: &[f32; 64],
        step: f32,
        codes: &mut [i32; 64],
        escapes: &mut Vec<i32>,
    ) {
        // SAFETY: AVX2 detected (dispatcher invariant).
        unsafe { zfp_quantize_avx2(block, step, codes, escapes) }
    }

    fn find_bin(&self, cdf: &[u32], bin: usize, target: u32) -> usize {
        // SAFETY: AVX2 detected (dispatcher invariant).
        unsafe { find_bin_avx2(cdf, bin, target) }
    }

    fn match_len(&self, a: &[u8], b: &[u8]) -> usize {
        // SAFETY: AVX2 detected (dispatcher invariant).
        unsafe { match_len_avx2(a, b) }
    }

    fn hash4_batch(&self, input: &[u8], bits: u32, out: &mut [u32]) {
        // SAFETY: AVX2 detected (dispatcher invariant).
        unsafe { hash4_batch_avx2(input, bits, out) }
    }
}

// ----------------------------------------------------------------------
// Round emulation
// ----------------------------------------------------------------------

/// Exact `f32::round` (half away from zero) on 8 lanes.  See the module
/// docs for why the tie fix-up is exact.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn round_half_away_avx2(x: __m256) -> __m256 {
    let sign = _mm256_set1_ps(-0.0);
    let half = _mm256_set1_ps(0.5);
    let t = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(x);
    let d = _mm256_sub_ps(x, t);
    let tie = _mm256_cmp_ps::<_CMP_EQ_OQ>(_mm256_andnot_ps(sign, d), half);
    let away = _mm256_add_ps(x, _mm256_or_ps(_mm256_and_ps(sign, x), half));
    _mm256_blendv_ps(t, away, tie)
}

/// Exact `f32::round` on 4 lanes without `roundps`: `rint` via the int
/// round-trip under a `|x| < 2^23` guard (NaN and huge values pass
/// through), then the same tie fix-up.
#[inline]
unsafe fn round_half_away_sse2(x: __m128) -> __m128 {
    let sign = _mm_set1_ps(-0.0);
    let half = _mm_set1_ps(0.5);
    let abs_x = _mm_andnot_ps(sign, x);
    let small = _mm_cmplt_ps(abs_x, _mm_set1_ps(8_388_608.0)); // 2^23; NaN -> false
    let t = _mm_cvtepi32_ps(_mm_cvtps_epi32(x));
    let d = _mm_sub_ps(x, t);
    let tie = _mm_cmpeq_ps(_mm_andnot_ps(sign, d), half);
    let away = _mm_add_ps(x, _mm_or_ps(_mm_and_ps(sign, x), half));
    let rounded = _mm_or_ps(_mm_and_ps(tie, away), _mm_andnot_ps(tie, t));
    _mm_or_ps(_mm_and_ps(small, rounded), _mm_andnot_ps(small, x))
}

// ----------------------------------------------------------------------
// SZ Lorenzo wavefront
// ----------------------------------------------------------------------

/// Interior plane walk vectorised along anti-diagonals.
///
/// Within a plane, interior cell `(j, k)` depends on `(j, k-1)`, `(j-1, k)`
/// and `(j-1, k-1)` — all on anti-diagonals `j + k - 1` and `j + k - 2` —
/// so every cell on one anti-diagonal is independent.  Lanes walk 8
/// consecutive rows of a diagonal (memory stride `d2 - 1`), neighbours come
/// in through gathers, and results scatter back through 8 scalar stores
/// (AVX2 has no scatter).  Leftover diagonal cells take the scalar
/// quantiser, so output is bit-identical to the row-wise scalar walk for
/// every plane shape.
#[target_feature(enable = "avx2")]
unsafe fn sz_quantize_plane_avx2(p: &mut SzPlane<'_>) {
    let (d1, d2) = (p.d1, p.d2);
    let n = d1 * d2;
    assert!(
        p.src.len() >= n && p.prev.len() >= n && p.recon.len() >= n && p.codes.len() >= n,
        "SzPlane slices shorter than d1 * d2"
    );
    let src = p.src.as_ptr();
    let prev = p.prev.as_ptr();
    let recon = p.recon.as_mut_ptr();
    let codes = p.codes.as_mut_ptr();

    let two_eb_v = _mm256_set1_ps(p.two_eb);
    let abs_err_v = _mm256_set1_ps(p.abs_error);
    let max_code_v = _mm256_set1_ps(SZ_MAX_CODE as f32);
    let escape_v = _mm256_set1_epi32(SZ_UNPREDICTABLE);
    let inf_v = _mm256_set1_ps(f32::INFINITY);
    let sign_v = _mm256_set1_ps(-0.0);
    let d2_i = d2 as i32;
    let stride = d2_i - 1;
    let lane_off = _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(stride),
    );

    for d in 2..=(d1 - 1) + (d2 - 1) {
        let j_lo = if d + 1 > d2 { d + 1 - d2 } else { 1 };
        let j_hi = (d1 - 1).min(d - 1); // inclusive
        let mut j = j_lo;
        while j + 7 <= j_hi {
            // Lanes r = 0..8 handle cells (j + r, d - j - r); all gathered
            // neighbours are on earlier diagonals, already written.
            let base = (j * d2 + (d - j)) as i32;
            let idx = _mm256_add_epi32(_mm256_set1_epi32(base), lane_off);
            let idx_l = _mm256_sub_epi32(idx, _mm256_set1_epi32(1));
            let idx_u = _mm256_sub_epi32(idx, _mm256_set1_epi32(d2_i));
            let idx_ul = _mm256_sub_epi32(idx, _mm256_set1_epi32(d2_i + 1));
            let val = _mm256_i32gather_ps::<4>(src, idx);
            let pp = _mm256_i32gather_ps::<4>(prev, idx);
            let ppp = _mm256_i32gather_ps::<4>(prev, idx_u);
            let pp_left = _mm256_i32gather_ps::<4>(prev, idx_l);
            let ppp_left = _mm256_i32gather_ps::<4>(prev, idx_ul);
            let left = _mm256_i32gather_ps::<4>(recon as *const f32, idx_l);
            let prev_r = _mm256_i32gather_ps::<4>(recon as *const f32, idx_u);
            let pr_left = _mm256_i32gather_ps::<4>(recon as *const f32, idx_ul);

            // Same association order as the scalar walk:
            // pp + prev + left - ppp - pp_left - pr_left + ppp_left.
            let mut pred = _mm256_add_ps(pp, prev_r);
            pred = _mm256_add_ps(pred, left);
            pred = _mm256_sub_ps(pred, ppp);
            pred = _mm256_sub_ps(pred, pp_left);
            pred = _mm256_sub_ps(pred, pr_left);
            pred = _mm256_add_ps(pred, ppp_left);

            let q = round_half_away_avx2(_mm256_div_ps(_mm256_sub_ps(val, pred), two_eb_v));
            let q_i = _mm256_cvtps_epi32(q);
            let rec_q = _mm256_add_ps(pred, _mm256_mul_ps(q, two_eb_v));
            let ok = _mm256_and_ps(
                _mm256_and_ps(
                    _mm256_cmp_ps::<_CMP_LE_OQ>(_mm256_andnot_ps(sign_v, q), max_code_v),
                    _mm256_cmp_ps::<_CMP_LE_OQ>(
                        _mm256_andnot_ps(sign_v, _mm256_sub_ps(rec_q, val)),
                        abs_err_v,
                    ),
                ),
                _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_andnot_ps(sign_v, rec_q), inf_v),
            );
            let code = _mm256_blendv_epi8(escape_v, q_i, _mm256_castps_si256(ok));
            let rec = _mm256_blendv_ps(val, rec_q, ok);

            let mut rec_a = [0.0f32; 8];
            let mut code_a = [0i32; 8];
            _mm256_storeu_ps(rec_a.as_mut_ptr(), rec);
            _mm256_storeu_si256(code_a.as_mut_ptr().cast(), code);
            let mut off = base as usize;
            for r in 0..8 {
                *recon.add(off) = rec_a[r];
                *codes.add(off) = code_a[r];
                off += d2 - 1;
            }
            j += 8;
        }
        for jj in j..=j_hi {
            let idx = jj * d2 + (d - jj);
            let pred = *prev.add(idx) + *recon.add(idx - d2) + *recon.add(idx - 1)
                - *prev.add(idx - d2)
                - *prev.add(idx - 1)
                - *recon.add(idx - d2 - 1)
                + *prev.add(idx - d2 - 1);
            let (code, rec, _) =
                scalar::sz_quantize_cell(*src.add(idx), pred, p.two_eb, p.abs_error);
            *codes.add(idx) = code;
            *recon.add(idx) = rec;
        }
    }
}

// ----------------------------------------------------------------------
// ZFP tile transform + quantise
// ----------------------------------------------------------------------

#[inline]
unsafe fn transpose4(
    r0: __m128,
    r1: __m128,
    r2: __m128,
    r3: __m128,
) -> (__m128, __m128, __m128, __m128) {
    let t0 = _mm_unpacklo_ps(r0, r1);
    let t1 = _mm_unpacklo_ps(r2, r3);
    let t2 = _mm_unpackhi_ps(r0, r1);
    let t3 = _mm_unpackhi_ps(r2, r3);
    (
        _mm_movelh_ps(t0, t1),
        _mm_movehl_ps(t1, t0),
        _mm_movelh_ps(t2, t3),
        _mm_movehl_ps(t3, t2),
    )
}

/// Separable tile transform with the four outputs of every 4-point line in
/// lanes.  Per lane the accumulation is `((((0 + t0) + t1) + t2) + t3)` —
/// the scalar loop's order, including the signed-zero-relevant leading add.
unsafe fn zfp_transform_sse2(block: &mut [f32; 64], basis: &[[f32; 4]; 4], inverse: bool) {
    let r0 = _mm_loadu_ps(basis[0].as_ptr());
    let r1 = _mm_loadu_ps(basis[1].as_ptr());
    let r2 = _mm_loadu_ps(basis[2].as_ptr());
    let r3 = _mm_loadu_ps(basis[3].as_ptr());
    // c[n] lane k = coefficient of input n for output k.
    let (c0, c1, c2, c3) = if inverse {
        (r0, r1, r2, r3) // coef(k, n) = basis[n][k]: rows as-is
    } else {
        transpose4(r0, r1, r2, r3) // coef(k, n) = basis[k][n]: columns
    };
    let zero = _mm_setzero_ps();
    let axes: [usize; 3] = if inverse { [2, 1, 0] } else { [0, 1, 2] };
    for axis in axes {
        let stride = [16usize, 4, 1][axis];
        for a in 0..4 {
            for b in 0..4 {
                let base = match axis {
                    0 => a * 4 + b,
                    1 => a * 16 + b,
                    _ => a * 16 + b * 4,
                };
                let line = if stride == 1 {
                    _mm_loadu_ps(block.as_ptr().add(base))
                } else {
                    _mm_setr_ps(
                        block[base],
                        block[base + stride],
                        block[base + 2 * stride],
                        block[base + 3 * stride],
                    )
                };
                let mut acc = _mm_add_ps(zero, _mm_mul_ps(c0, _mm_shuffle_ps::<0x00>(line, line)));
                acc = _mm_add_ps(acc, _mm_mul_ps(c1, _mm_shuffle_ps::<0x55>(line, line)));
                acc = _mm_add_ps(acc, _mm_mul_ps(c2, _mm_shuffle_ps::<0xAA>(line, line)));
                acc = _mm_add_ps(acc, _mm_mul_ps(c3, _mm_shuffle_ps::<0xFF>(line, line)));
                if stride == 1 {
                    _mm_storeu_ps(block.as_mut_ptr().add(base), acc);
                } else {
                    let mut out = [0.0f32; 4];
                    _mm_storeu_ps(out.as_mut_ptr(), acc);
                    for (i, &o) in out.iter().enumerate() {
                        block[base + i * stride] = o;
                    }
                }
            }
        }
    }
}

/// 4-wide tile quantisation.  `|q| <= MAX_CODE` already implies `q` is
/// finite (NaN fails the ordered compare), so one compare reproduces the
/// scalar `ok`; escape lanes recompute `q` scalar-side, which is exact
/// because the division and the round emulation are both bit-identical.
unsafe fn zfp_quantize_sse2(
    block: &[f32; 64],
    step: f32,
    codes: &mut [i32; 64],
    escapes: &mut Vec<i32>,
) {
    let step_v = _mm_set1_ps(step);
    let max_v = _mm_set1_ps(ZFP_MAX_CODE as f32);
    let esc_v = _mm_set1_epi32(ZFP_ESCAPE);
    let sign_v = _mm_set1_ps(-0.0);
    for i in (0..64).step_by(4) {
        let c = _mm_loadu_ps(block.as_ptr().add(i));
        let q = round_half_away_sse2(_mm_div_ps(c, step_v));
        let ok = _mm_cmple_ps(_mm_andnot_ps(sign_v, q), max_v);
        let ok_i = _mm_castps_si128(ok);
        let code = _mm_or_si128(
            _mm_and_si128(ok_i, _mm_cvtps_epi32(q)),
            _mm_andnot_si128(ok_i, esc_v),
        );
        _mm_storeu_si128(codes.as_mut_ptr().add(i).cast(), code);
        let m = _mm_movemask_ps(ok);
        if m != 0xF {
            for l in 0..4 {
                if m & (1 << l) == 0 {
                    let q = (block[i + l] / step).round();
                    escapes.push(q.clamp(i32::MIN as f32, i32::MAX as f32) as i32);
                }
            }
        }
    }
}

/// 8-wide tile quantisation (see [`zfp_quantize_sse2`] for the invariants).
#[target_feature(enable = "avx2")]
unsafe fn zfp_quantize_avx2(
    block: &[f32; 64],
    step: f32,
    codes: &mut [i32; 64],
    escapes: &mut Vec<i32>,
) {
    let step_v = _mm256_set1_ps(step);
    let max_v = _mm256_set1_ps(ZFP_MAX_CODE as f32);
    let esc_v = _mm256_set1_epi32(ZFP_ESCAPE);
    let sign_v = _mm256_set1_ps(-0.0);
    for i in (0..64).step_by(8) {
        let c = _mm256_loadu_ps(block.as_ptr().add(i));
        let q = round_half_away_avx2(_mm256_div_ps(c, step_v));
        let ok = _mm256_cmp_ps::<_CMP_LE_OQ>(_mm256_andnot_ps(sign_v, q), max_v);
        let code = _mm256_blendv_epi8(esc_v, _mm256_cvtps_epi32(q), _mm256_castps_si256(ok));
        _mm256_storeu_si256(codes.as_mut_ptr().add(i).cast(), code);
        let m = _mm256_movemask_ps(ok);
        if m != 0xFF {
            for l in 0..8 {
                if m & (1 << l) == 0 {
                    let q = (block[i + l] / step).round();
                    escapes.push(q.clamp(i32::MIN as f32, i32::MAX as f32) as i32);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Histogram bin scan
// ----------------------------------------------------------------------

/// Unsigned 32-bit `>` via the sign-flip trick (SSE/AVX only have signed
/// integer compares).
#[inline]
unsafe fn find_bin_sse2(cdf: &[u32], mut bin: usize, target: u32) -> usize {
    let flip = _mm_set1_epi32(i32::MIN);
    let target_v = _mm_xor_si128(_mm_set1_epi32(target as i32), flip);
    while bin + 5 <= cdf.len() {
        let v = _mm_loadu_si128(cdf.as_ptr().add(bin + 1).cast());
        let gt = _mm_cmpgt_epi32(_mm_xor_si128(v, flip), target_v);
        let m = _mm_movemask_ps(_mm_castsi128_ps(gt));
        if m != 0 {
            return bin + m.trailing_zeros() as usize;
        }
        bin += 4;
    }
    scalar::find_bin(cdf, bin, target)
}

/// 8-wide variant of [`find_bin_sse2`].
#[target_feature(enable = "avx2")]
unsafe fn find_bin_avx2(cdf: &[u32], mut bin: usize, target: u32) -> usize {
    let flip = _mm256_set1_epi32(i32::MIN);
    let target_v = _mm256_xor_si256(_mm256_set1_epi32(target as i32), flip);
    while bin + 9 <= cdf.len() {
        let v = _mm256_loadu_si256(cdf.as_ptr().add(bin + 1).cast());
        let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(v, flip), target_v);
        let m = _mm256_movemask_ps(_mm256_castsi256_ps(gt));
        if m != 0 {
            return bin + m.trailing_zeros() as usize;
        }
        bin += 8;
    }
    scalar::find_bin(cdf, bin, target)
}

// ----------------------------------------------------------------------
// LZ match extension + hash batch
// ----------------------------------------------------------------------

unsafe fn match_len_sse2(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
        let m = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
        if m != 0xFFFF {
            return i + (!m).trailing_zeros() as usize;
        }
        i += 16;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

#[target_feature(enable = "avx2")]
unsafe fn match_len_avx2(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 32 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
        let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
        if m != u32::MAX {
            return i + (!m).trailing_zeros() as usize;
        }
        i += 32;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// 32 hashes per iteration: four overlapping 32-byte loads give the 4-byte
/// windows at byte offsets `i + 4j + m` in lane `j` of load `m`; after the
/// multiply/shift the four hash vectors are interleaved back into position
/// order with `unpack{lo,hi}_epi{32,64}` + `permute2x128`.
#[target_feature(enable = "avx2")]
unsafe fn hash4_batch_avx2(input: &[u8], bits: u32, out: &mut [u32]) {
    let n = out.len();
    let mul = _mm256_set1_epi32(0x9E37_79B1u32 as i32);
    let shift = _mm_cvtsi32_si128((32 - bits) as i32);
    let mut i = 0;
    // Load `m` reads bytes `i + m .. i + m + 32`; `i + 32 <= n` bounds the
    // furthest byte at `i + 34 < n + 3 <= input.len()`.
    while i + 32 <= n {
        let hash = |off: usize| {
            let v = _mm256_loadu_si256(input.as_ptr().add(i + off).cast());
            _mm256_srl_epi32(_mm256_mullo_epi32(v, mul), shift)
        };
        let (ha, hb, hc, hd) = (hash(0), hash(1), hash(2), hash(3));
        let t0 = _mm256_unpacklo_epi32(ha, hb);
        let t1 = _mm256_unpackhi_epi32(ha, hb);
        let t2 = _mm256_unpacklo_epi32(hc, hd);
        let t3 = _mm256_unpackhi_epi32(hc, hd);
        let u0 = _mm256_unpacklo_epi64(t0, t2);
        let u1 = _mm256_unpackhi_epi64(t0, t2);
        let u2 = _mm256_unpacklo_epi64(t1, t3);
        let u3 = _mm256_unpackhi_epi64(t1, t3);
        let o = out.as_mut_ptr().add(i);
        _mm256_storeu_si256(o.cast(), _mm256_permute2x128_si256::<0x20>(u0, u1));
        _mm256_storeu_si256(o.add(8).cast(), _mm256_permute2x128_si256::<0x20>(u2, u3));
        _mm256_storeu_si256(o.add(16).cast(), _mm256_permute2x128_si256::<0x31>(u0, u1));
        _mm256_storeu_si256(o.add(24).cast(), _mm256_permute2x128_si256::<0x31>(u2, u3));
        i += 32;
    }
    for (at, slot) in out.iter_mut().enumerate().take(n).skip(i) {
        *slot = scalar::hash4_one(input, at, bits);
    }
}
