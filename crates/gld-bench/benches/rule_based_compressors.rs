//! Criterion benchmarks for the rule-based baselines on a realistic
//! climate-like block, at two error bounds (loose/tight).

use criterion::{criterion_group, criterion_main, Criterion};
use gld_baselines::{ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use std::hint::black_box;

fn bench_rule_based(c: &mut Criterion) {
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 16, 32, 32), 9);
    let block = ds.variables[0].frames.clone();
    let range = block.max() - block.min();
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    let sz_stream = sz.compress(&block, 1e-3 * range);
    let zfp_stream = zfp.compress(&block, 1e-3 * range);

    let mut group = c.benchmark_group("rule_based_compressors");
    group.sample_size(10);
    for (label, rel) in [("loose_1e-2", 1e-2f32), ("tight_1e-4", 1e-4)] {
        group.bench_function(format!("sz_like_compress_{label}"), |bench| {
            bench.iter(|| black_box(sz.compress(&block, rel * range)))
        });
        group.bench_function(format!("zfp_like_compress_{label}"), |bench| {
            bench.iter(|| black_box(zfp.compress(&block, rel * range)))
        });
    }
    group.bench_function("sz_like_decompress", |bench| {
        bench.iter(|| black_box(sz.decompress(&sz_stream)))
    });
    group.bench_function("zfp_like_decompress", |bench| {
        bench.iter(|| black_box(zfp.decompress(&zfp_stream)))
    });
    group.finish();
}

criterion_group!(benches, bench_rule_based);
criterion_main!(benches);
