//! # gld-datasets
//!
//! Synthetic spatiotemporal scientific datasets standing in for the paper's
//! E3SM (climate), S3D (combustion) and JHTDB (turbulence) evaluation data,
//! plus the block pipeline that feeds them to the compressors.
//!
//! The real datasets are tens of gigabytes of restricted simulation output;
//! the generators here reproduce the statistical regimes that matter to a
//! compressor (see `DESIGN.md` §1 for the substitution argument):
//!
//! * [`e3sm`] — smooth, strongly temporally-correlated multi-variable fields
//!   with periodic forcing and extreme dynamic range.
//! * [`s3d`] — reaction–diffusion ignition kernels: sharp moving fronts over
//!   smooth backgrounds, many coupled species channels.
//! * [`jhtdb`] — divergence-free synthetic turbulence with a k^(-5/3)-like
//!   spectrum and moderate temporal correlation.
//!
//! All generators are deterministic given a seed and a
//! [`FieldSpec`], so every experiment in `gld-bench` is reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocks;
pub mod e3sm;
pub mod field;
pub mod jhtdb;
pub mod s3d;

pub use blocks::{BlockIterator, BlockSpec, TemporalWindow};
pub use field::{DatasetInfo, DatasetKind, FieldSpec, ScientificDataset, Variable};

use gld_tensor::TensorRng;

/// Generates the named dataset with the given spec and seed.
pub fn generate(kind: DatasetKind, spec: &FieldSpec, seed: u64) -> ScientificDataset {
    let mut rng = TensorRng::new(seed);
    match kind {
        DatasetKind::E3sm => e3sm::generate(spec, &mut rng),
        DatasetKind::S3d => s3d::generate(spec, &mut rng),
        DatasetKind::Jhtdb => jhtdb::generate(spec, &mut rng),
    }
}

/// Returns the paper's Table 1 (dataset inventory) for the original data and
/// the corresponding synthetic stand-ins produced by this crate.
pub fn table1_rows(spec: &FieldSpec) -> Vec<(DatasetInfo, DatasetInfo)> {
    vec![
        (
            DatasetInfo::paper_e3sm(),
            DatasetInfo::synthetic(DatasetKind::E3sm, spec),
        ),
        (
            DatasetInfo::paper_s3d(),
            DatasetInfo::synthetic(DatasetKind::S3d, spec),
        ),
        (
            DatasetInfo::paper_jhtdb(),
            DatasetInfo::synthetic(DatasetKind::Jhtdb, spec),
        ),
    ]
}
