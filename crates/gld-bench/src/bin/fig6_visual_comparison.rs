//! Regenerates Figure 6: a visual comparison of reconstructions at a matched
//! compression ratio (≈ the same bound for every method).  Because this is a
//! terminal harness, the "visualisation" is emitted as PGM images plus an
//! ASCII zoom of the highlighted region, one file per method, under
//! `results/fig6/`.

use gld_baselines::{ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_bench::{results_dir, train_on};
use gld_core::{ErrorBoundConfig, LearnedBaseline, LearnedBaselineKind, PcaErrorBound};
use gld_datasets::DatasetKind;
use gld_tensor::stats::nrmse;
use gld_tensor::Tensor;

/// Writes a `[H, W]` frame as an 8-bit PGM image.
fn write_pgm(path: &std::path::Path, frame: &Tensor) {
    let (h, w) = (frame.dim(0), frame.dim(1));
    let (lo, hi) = (frame.min(), frame.max());
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let mut out = format!("P2\n{w} {h}\n255\n");
    for y in 0..h {
        for x in 0..w {
            let v = ((frame.at(&[y, x]) - lo) * scale).round() as i32;
            out.push_str(&format!("{v} "));
        }
        out.push('\n');
    }
    std::fs::write(path, out).expect("write pgm");
}

/// ASCII rendering of the zoomed region (rows 4..12, cols 4..12).
fn ascii_zoom(frame: &Tensor) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let zoom = frame.slice_axis(0, 4, 12).slice_axis(1, 4, 12);
    let (lo, hi) = (zoom.min(), zoom.max());
    let scale = if hi > lo { 9.0 / (hi - lo) } else { 0.0 };
    let mut out = String::new();
    for y in 0..8 {
        for x in 0..8 {
            let level = ((zoom.at(&[y, x]) - lo) * scale).round() as usize;
            out.push(glyphs[level.min(9)]);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let dir = results_dir().join("fig6");
    std::fs::create_dir_all(&dir).expect("create fig6 dir");
    let (compressor, dataset) = train_on(DatasetKind::E3sm, 606);
    let block = dataset.variables[0]
        .frames
        .slice_axis(0, 0, compressor.config().block_frames);
    let frame_idx = 8; // a generated (non-keyframe) frame
    let original = block.slice_axis(0, frame_idx, frame_idx + 1).squeeze(0);
    write_pgm(&dir.join("original.pgm"), &original);
    println!("Figure 6 — reconstruction comparison (frame {frame_idx}, E3SM-like)\n");
    println!("original zoom:\n{}", ascii_zoom(&original));

    let target = 1e-2;
    let module = PcaErrorBound::new(ErrorBoundConfig::default());

    // Ours.
    let compressed = compressor.compress_block(&block, Some(target));
    let recon = compressor.decompress_block(&compressed);
    report(
        "Ours",
        &dir,
        &block,
        &recon,
        frame_idx,
        compressed.compression_ratio(),
    );

    // Learned baselines.
    for kind in [LearnedBaselineKind::VaeSr, LearnedBaselineKind::CdcX] {
        let baseline = LearnedBaseline::new(kind, compressor.vae(), None);
        let bytes = baseline.compress(&block);
        let raw = baseline.decompress(&bytes);
        let tau = PcaErrorBound::tau_for_nrmse(&block, target);
        let (corrected, aux, _) = module.apply(&block, &raw, tau);
        let ratio = (block.numel() * 4) as f64 / (bytes.len() + aux.len()) as f64;
        report(kind.name(), &dir, &block, &corrected, frame_idx, ratio);
    }

    // Rule-based baselines at a matched point-wise bound.
    let range = block.max() - block.min();
    for (name, codec) in [
        (
            "SZ3-like",
            &SzCompressor::new() as &dyn ErrorBoundedCompressor,
        ),
        (
            "ZFP-like",
            &ZfpLikeCompressor::new() as &dyn ErrorBoundedCompressor,
        ),
    ] {
        let (recon, size) = codec.roundtrip(&block, target * range);
        let ratio = (block.numel() * 4) as f64 / size as f64;
        report(name, &dir, &block, &recon, frame_idx, ratio);
    }
    println!("PGM images written under {}", dir.display());
}

fn report(
    name: &str,
    dir: &std::path::Path,
    block: &Tensor,
    recon: &Tensor,
    frame_idx: usize,
    ratio: f64,
) {
    let frame = recon.slice_axis(0, frame_idx, frame_idx + 1).squeeze(0);
    let err = nrmse(block, recon);
    let file = dir.join(format!(
        "{}.pgm",
        name.to_lowercase().replace(['-', ' '], "_")
    ));
    write_pgm(&file, &frame);
    println!(
        "{name:<10} ratio {ratio:7.1}x  NRMSE {err:.3e}\n{}",
        ascii_zoom(&frame)
    );
}
