//! Protocol fuzz battery: the `GLDS` decoders must never panic and must
//! always yield a typed [`ProtocolError`] on bad input — over arbitrary
//! bytes, truncations of valid frames, and single-bit flips of valid
//! request *and* response frames (the corruption-detection idiom of
//! `tests/container_roundtrip.rs`, pointed at the wire layer).

use gld_core::ErrorTarget;
use gld_service::protocol::{
    decode_blocks_body, decode_frame, CompressRequest, DecompressRequest, FrameHeader,
    HelloRequest, HelloResponse, Op, ProtocolError, RawFrameHeader, Status, HEADER_LEN,
};
use gld_tensor::Tensor;
use proptest::prelude::*;

/// A representative valid compress-request frame to mutate.
fn valid_compress_frame(key_seed: usize, frames: usize) -> Vec<u8> {
    let request = CompressRequest {
        key: format!("variable_{key_seed}"),
        block_frames: 4,
        target: Some(ErrorTarget::Nrmse(1e-2)),
        dims: [frames as u32, 4, 4],
        data: (0..frames * 16).map(|i| (i as f32).sin()).collect(),
    };
    let body = request.encode_body();
    let header = FrameHeader::request(Op::Compress, 2, 42, body.len() as u64);
    let mut frame = header.encode().to_vec();
    frame.extend_from_slice(&body);
    frame
}

/// A representative valid decompress-response frame (blocks body).
fn valid_blocks_frame() -> Vec<u8> {
    let blocks = vec![
        Tensor::arange(4 * 3 * 3).reshape(&[4, 3, 3]),
        Tensor::ones(&[2, 3, 3]),
    ];
    let body = decode_blocks_roundtrip_body(&blocks);
    let header = FrameHeader::response(Op::Decompress, 2, Status::Ok, 7, body.len() as u64);
    let mut frame = header.encode().to_vec();
    frame.extend_from_slice(&body);
    frame
}

fn decode_blocks_roundtrip_body(blocks: &[Tensor]) -> Vec<u8> {
    gld_service::protocol::encode_blocks_body(blocks)
}

/// Exercises every decoder layer on one byte string.  Panics propagate and
/// fail the proptest; anything else is by definition a typed result.
fn drive_all_decoders(bytes: &[u8]) {
    let whole = decode_frame(bytes);
    if let Ok((header, body)) = &whole {
        // A frame that decodes structurally gets its body parsed under
        // every op interpretation the server and client use.
        let _ = header;
        let _ = CompressRequest::decode_body(body);
        let _ = DecompressRequest::decode_body(body);
        let _ = HelloRequest::decode_body(body);
        let _ = HelloResponse::decode_body(body);
        let _ = decode_blocks_body(body);
    }
    if bytes.len() >= HEADER_LEN {
        let fixed: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        let _ = RawFrameHeader::decode(fixed).map(RawFrameHeader::validate);
        let _ = FrameHeader::decode(fixed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(
        bytes in prop::collection::vec(0u32..256, 0..96),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        drive_all_decoders(&bytes);
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        bytes in prop::collection::vec(0u32..256, 0..96),
    ) {
        // Start from protocol-shaped garbage so fuzzing spends its cases
        // past the magic/version gate instead of dying at byte 0.
        let mut framed = FrameHeader::request(Op::Compress, 2, 1, 0).encode().to_vec();
        framed.extend(bytes.into_iter().map(|b| b as u8));
        // Overwrite the declared body length with the actual tail length so
        // deeper body decoders run too.
        let tail = (framed.len() - HEADER_LEN) as u64;
        framed[24..32].copy_from_slice(&tail.to_le_bytes());
        drive_all_decoders(&framed);
    }

    #[test]
    fn truncations_of_a_valid_frame_always_yield_typed_errors(
        key in 0usize..1000,
        frames in 1usize..5,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = valid_compress_frame(key, frames * 4);
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        let result = decode_frame(&frame[..cut]);
        prop_assert!(
            matches!(result, Err(ProtocolError::Truncated { .. })),
            "cut at {cut}/{} must be Truncated, got {result:?}",
            frame.len()
        );
    }

    #[test]
    fn bit_flipped_request_frames_never_panic(
        key in 0usize..1000,
        frames in 1usize..5,
        flip_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut frame = valid_compress_frame(key, frames * 4);
        let at = ((frame.len() - 1) as f64 * flip_frac) as usize;
        frame[at] ^= 1 << bit;
        drive_all_decoders(&frame);
    }

    #[test]
    fn bit_flipped_response_frames_never_panic(
        flip_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut frame = valid_blocks_frame();
        let at = ((frame.len() - 1) as f64 * flip_frac) as usize;
        frame[at] ^= 1 << bit;
        drive_all_decoders(&frame);
    }

    #[test]
    fn arbitrary_bodies_never_panic_the_body_decoders(
        bytes in prop::collection::vec(0u32..256, 0..64),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = CompressRequest::decode_body(&bytes);
        let _ = DecompressRequest::decode_body(&bytes);
        let _ = HelloRequest::decode_body(&bytes);
        let _ = HelloResponse::decode_body(&bytes);
        let _ = decode_blocks_body(&bytes);
    }
}

#[test]
fn every_header_byte_position_survives_exhaustive_single_byte_corruption() {
    // Exhaustive (not sampled): every header byte set to every value must
    // decode to Ok or a typed error — never a panic, never an allocation
    // blow-up.  This nails the magic/version/op/status/reserved/length
    // boundaries deterministically.
    let frame = valid_compress_frame(0, 4);
    for at in 0..HEADER_LEN {
        for value in 0..=255u8 {
            let mut corrupt = frame.clone();
            corrupt[at] = value;
            let _ = decode_frame(&corrupt);
        }
    }
}
