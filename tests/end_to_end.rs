//! Cross-crate integration test: train the full pipeline on each synthetic
//! dataset and verify the end-to-end compress → decompress contract.

use gld_core::{GldCompressor, GldConfig, GldTrainingBudget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::nrmse;

fn quick_budget() -> GldTrainingBudget {
    GldTrainingBudget {
        vae_steps: 100,
        diffusion_steps: 100,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    }
}

#[test]
fn pipeline_runs_on_every_synthetic_dataset() {
    let spec = FieldSpec::tiny();
    for kind in DatasetKind::all() {
        let ds = generate(kind, &spec, 41);
        let config = GldConfig::tiny();
        let compressor = GldCompressor::train(config, &ds.variables, quick_budget());
        let block = ds.variables[0].frames.slice_axis(0, 0, config.block_frames);
        let compressed = compressor.compress_block(&block, Some(1e-2));
        let recon = compressor.decompress_block(&compressed);
        assert_eq!(recon.dims(), block.dims(), "{kind:?}");
        let err = nrmse(&block, &recon);
        assert!(
            err <= 1e-2 * 1.01,
            "{kind:?}: NRMSE {err} exceeds the requested bound"
        );
        assert!(
            compressed.compression_ratio() > 1.0,
            "{kind:?}: no compression achieved"
        );
    }
}

#[test]
fn compressed_blocks_are_self_describing() {
    let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 43);
    let config = GldConfig::tiny();
    let compressor = GldCompressor::train(config, &ds.variables, quick_budget());
    let block = ds.variables[1].frames.slice_axis(0, 0, config.block_frames);
    let compressed = compressor.compress_block(&block, None);
    // Serialise through the binary container frame format and make sure a
    // decoder fed the decoded copy produces identical output.
    let frame = compressed.encode();
    assert_eq!(frame.len(), compressed.total_bytes());
    let restored = gld_core::CompressedBlock::decode(&frame).expect("decode frame");
    let a = compressor.decompress_block(&compressed);
    let b = compressor.decompress_block(&restored);
    assert_eq!(a, b);
}

#[test]
fn denoising_step_count_trades_speed_for_error() {
    // More steps never needs to be catastrophically worse; both settings
    // must stay finite and decode deterministically (Figure 5 machinery).
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 47);
    let config = GldConfig::tiny();
    let mut compressor = GldCompressor::train(config, &ds.variables, quick_budget());
    let block = ds.variables[0].frames.slice_axis(0, 0, config.block_frames);
    let mut errors = Vec::new();
    for steps in [1usize, 4, 16] {
        compressor.set_denoising_steps(steps);
        let compressed = compressor.compress_block(&block, None);
        assert_eq!(compressed.denoising_steps, steps);
        let recon = compressor.decompress_block(&compressed);
        let err = nrmse(&block, &recon);
        assert!(err.is_finite());
        errors.push(err);
    }
    // All step counts produce usable reconstructions on the smooth dataset.
    assert!(errors.iter().all(|&e| e < 0.6), "errors {errors:?}");
}
