//! SZ3-like prediction-based error-bounded compressor.
//!
//! The scheme follows the classic SZ recipe:
//!
//! 1. walk the volume in raster order and predict every value with a 3-D
//!    Lorenzo predictor evaluated on already-reconstructed neighbours,
//! 2. quantise the prediction residual uniformly with bin width `2·eb`
//!    (which bounds the point-wise error by `eb`),
//! 3. entropy-code the quantisation codes with a histogram model and the
//!    byte-wise range coder; values whose residual falls outside the code
//!    range are stored verbatim ("unpredictable" escapes) and therefore
//!    carry zero error.
//!
//! The hot path is organised for throughput: the Lorenzo walk is split into
//! a **boundary** loop (first plane, first row and first column of each
//! plane — the cells with missing neighbours) and an **interior** loop
//! dispatched through [`gld_kernels`], which runs the branch-free walk with
//! the best SIMD backend the host supports (AVX2 processes eight cells of
//! an anti-diagonal wavefront per step).  Quantisation selects between the
//! coded and verbatim paths with branchless min/select logic, and all
//! per-block buffers come from a caller-provided [`SzScratch`] arena so
//! steady-state compression performs no allocation beyond the output frame.
//! `reference::sz_compress` keeps the original scalar walk; the equivalence
//! suite proves every backend produces byte-identical frames.
//!
//! Like SZ3 itself the method excels on smooth fields, where almost every
//! residual lands in the zero bin.

use crate::header::{BlockHeader, Codec};
use crate::{BaselineError, ErrorBoundedCompressor};
use gld_entropy::{HistogramModel, RangeDecoder, RangeEncoder};
use gld_kernels::{kernels, sz_quantize_cell, SzPlane};
use gld_tensor::Tensor;

/// Sentinel code marking an unpredictable (verbatim) value; residuals whose
/// code would exceed [`gld_kernels::SZ_MAX_CODE`] are stored as raw floats.
pub(crate) const UNPREDICTABLE: i32 = gld_kernels::SZ_UNPREDICTABLE;

/// Reusable per-worker buffers for [`SzCompressor::compress_into`]: the
/// reconstruction plane and the quantisation codes.  Reusing one `SzScratch`
/// across blocks removes every per-block allocation except the output frame
/// itself.
#[derive(Debug, Clone, Default)]
pub struct SzScratch {
    recon: Vec<f32>,
    codes: Vec<i32>,
}

impl SzScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Prediction-based error-bounded compressor (SZ3-like).
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor;

impl SzCompressor {
    /// Creates the compressor.
    pub fn new() -> Self {
        SzCompressor
    }

    /// Reinterprets an arbitrary rank-1..4 tensor as a 3-D volume
    /// `[planes, rows, cols]` without copying semantics that matter for
    /// prediction quality: trailing dimensions remain spatial.  Rank 5+ is
    /// a typed error.
    pub(crate) fn try_as_volume_dims(
        dims: &[usize],
    ) -> Result<(usize, usize, usize), BaselineError> {
        match dims.len() {
            1 => Ok((1, 1, dims[0])),
            2 => Ok((1, dims[0], dims[1])),
            3 => Ok((dims[0], dims[1], dims[2])),
            4 => Ok((dims[0] * dims[1], dims[2], dims[3])),
            rank => Err(BaselineError::UnsupportedRank { rank }),
        }
    }

    fn as_volume_dims(dims: &[usize]) -> (usize, usize, usize) {
        Self::try_as_volume_dims(dims).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compresses `data` into `out` (appended), reusing `scratch` for every
    /// intermediate buffer.  This is the allocation-free hot path behind
    /// both [`ErrorBoundedCompressor::compress`] and the streaming
    /// executor's per-worker arenas; output bytes are identical regardless
    /// of the scratch's previous contents.
    pub fn compress_into(
        &self,
        data: &Tensor,
        abs_error: f32,
        scratch: &mut SzScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), BaselineError> {
        self.compress_into_shared(data, abs_error, None, scratch, out)
    }

    /// [`SzCompressor::compress_into`] with an optional **shared** histogram
    /// model (the container's cross-frame entropy profile).  When `shared`
    /// covers every quantisation code of this block the frame references it
    /// through [`crate::SHARED_MODEL_SENTINEL`] — skipping both the model
    /// fit and its serialised table — and must be decoded through
    /// [`SzCompressor::decompress_shared`] with the same model.  Blocks the
    /// shared model cannot represent fall back to the embedded per-frame
    /// fit, so reconstruction is unconditionally exact to the cold path.
    pub fn compress_into_shared(
        &self,
        data: &Tensor,
        abs_error: f32,
        shared: Option<&gld_entropy::HistogramModel>,
        scratch: &mut SzScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), BaselineError> {
        assert!(abs_error > 0.0, "absolute error bound must be positive");
        let dims = Self::try_as_volume_dims(data.dims())?;
        let (d0, d1, d2) = dims;
        let n = d0 * d1 * d2;
        assert_eq!(n, data.numel());
        let src = data.data();
        let two_eb = 2.0 * abs_error;

        scratch.recon.resize(n, 0.0);
        scratch.codes.resize(n, 0);
        let recon = &mut scratch.recon[..];
        let codes = &mut scratch.codes[..];

        // One boundary cell through the generic neighbour-checked path.
        #[inline(always)]
        fn boundary_cell(
            src: &[f32],
            recon: &mut [f32],
            codes: &mut [i32],
            dims: (usize, usize, usize),
            (i, j, k): (usize, usize, usize),
            two_eb: f32,
            abs_error: f32,
        ) {
            let idx = (i * dims.1 + j) * dims.2 + k;
            let pred = lorenzo_predict(recon, dims, i, j, k);
            let (code, rec, _) = sz_quantize_cell(src[idx], pred, two_eb, abs_error);
            codes[idx] = code;
            recon[idx] = rec;
        }

        // Pass 1: prediction + quantisation.  Boundary cells (missing at
        // least one neighbour) take the generic path — the whole first
        // plane, then the first row and first column of each later plane —
        // before the interior of the plane is handed to the active kernel
        // backend.  Every cell is written before any later cell reads it,
        // so stale scratch contents can never leak into the output.
        let plane = d1 * d2;
        let kern = kernels();
        for i in 0..d0 {
            if i == 0 {
                for j in 0..d1 {
                    for k in 0..d2 {
                        boundary_cell(src, recon, codes, dims, (0, j, k), two_eb, abs_error);
                    }
                }
                continue;
            }
            for k in 0..d2 {
                boundary_cell(src, recon, codes, dims, (i, 0, k), two_eb, abs_error);
            }
            for j in 1..d1 {
                boundary_cell(src, recon, codes, dims, (i, j, 0), two_eb, abs_error);
            }
            // Interior (j ≥ 1, k ≥ 1) of this plane: the branch-free walk,
            // dispatched to the selected scalar/SSE2/AVX2 backend.  Every
            // backend is proven bit-identical to the reference walk.
            let (before, cur) = recon.split_at_mut(i * plane);
            kern.sz_quantize_plane(&mut SzPlane {
                src: &src[i * plane..(i + 1) * plane],
                prev: &before[(i - 1) * plane..],
                recon: &mut cur[..plane],
                codes: &mut codes[i * plane..(i + 1) * plane],
                d1,
                d2,
                two_eb,
                abs_error,
            });
        }

        // Pass 2: entropy coding with the table-driven range coder.  An
        // unpredictable cell reconstructs to its source value, so the
        // verbatim escape stream is just `src` at the escape positions.
        // Under a shared profile model, codes outside the model's range ride
        // its overflow symbol plus raw bits instead of forcing a per-frame
        // refit.
        BlockHeader::new(Codec::SzLike, data, abs_error).write(out);
        let section = crate::write_model_section(codes, shared, out);
        let model = section.model.as_ref();
        let mut enc = RangeEncoder::new();
        for (idx, &c) in codes.iter().enumerate() {
            match section.overflow {
                Some(overflow) if c == overflow || !model.can_encode(c) => {
                    model.encode_symbol(&mut enc, overflow);
                    enc.encode_bits_raw(c as u32 as u64, 32);
                }
                _ => model.encode_symbol(&mut enc, c),
            }
            if c == UNPREDICTABLE {
                enc.encode_bits_raw(src[idx].to_bits() as u64, 32);
            }
        }
        let stream = enc.finish();
        out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        out.extend_from_slice(&stream);
        Ok(())
    }
}

/// 3-D Lorenzo prediction from reconstructed neighbours (generic
/// neighbour-checked form, used for boundary cells).
#[inline]
fn lorenzo_predict(
    recon: &[f32],
    (d0, d1, d2): (usize, usize, usize),
    i: usize,
    j: usize,
    k: usize,
) -> f32 {
    let at = |ii: isize, jj: isize, kk: isize| -> f32 {
        if ii < 0 || jj < 0 || kk < 0 {
            0.0
        } else {
            recon[(ii as usize * d1 + jj as usize) * d2 + kk as usize]
        }
    };
    let (i, j, k) = (i as isize, j as isize, k as isize);
    let _ = d0;
    at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
        - at(i - 1, j - 1, k)
        - at(i - 1, j, k - 1)
        - at(i, j - 1, k - 1)
        + at(i - 1, j - 1, k - 1)
}

impl ErrorBoundedCompressor for SzCompressor {
    fn name(&self) -> &'static str {
        "SZ3-like"
    }

    fn compress(&self, data: &Tensor, abs_error: f32) -> Vec<u8> {
        self.try_compress(data, abs_error)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_compress(&self, data: &Tensor, abs_error: f32) -> Result<Vec<u8>, BaselineError> {
        let mut out = Vec::new();
        self.compress_into(data, abs_error, &mut SzScratch::new(), &mut out)?;
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Tensor {
        self.decompress_shared(bytes, None)
    }
}

impl SzCompressor {
    /// [`ErrorBoundedCompressor::decompress`] with an optional shared
    /// histogram model: required for frames written through
    /// [`SzCompressor::compress_into_shared`] that carry the shared-model
    /// sentinel, ignored by frames embedding their own model.
    pub fn decompress_shared(&self, bytes: &[u8], shared: Option<&HistogramModel>) -> Tensor {
        let (header, mut off) = BlockHeader::read(bytes);
        assert_eq!(header.codec, Codec::SzLike, "not an SZ3-like stream");
        let section = crate::read_model_section(bytes, &mut off, shared);
        let model = section.model.as_ref();
        let overflow = section.overflow;
        let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let stream = &bytes[off..off + stream_len];

        let dims = Self::as_volume_dims(&header.dims);
        let (d0, d1, d2) = dims;
        let n = header.numel();
        let two_eb = 2.0 * header.abs_error;
        let mut dec = RangeDecoder::new(stream);
        let mut recon = vec![0.0f32; n];
        let plane = d1 * d2;
        for i in 0..d0 {
            for j in 0..d1 {
                let boundary_row = i == 0 || j == 0;
                let row_start = i * plane + j * d2;
                let k_end = if boundary_row { d2 } else { 1 };
                for k in 0..k_end {
                    let idx = row_start + k;
                    let code = crate::read_code(model, overflow, &mut dec);
                    recon[idx] = if code == UNPREDICTABLE {
                        f32::from_bits(dec.decode_bits_raw(32) as u32)
                    } else {
                        let pred = lorenzo_predict(&recon, dims, i, j, k);
                        pred + code as f32 * two_eb
                    };
                }
                if boundary_row {
                    continue;
                }
                let (before, cur) = recon.split_at_mut(row_start);
                let cur_row = &mut cur[..d2];
                let prev_row = &before[row_start - d2..row_start];
                let pp_row = &before[row_start - plane..row_start - plane + d2];
                let ppp_row = &before[row_start - plane - d2..row_start - plane];
                let mut left = cur_row[0];
                let mut pr_left = prev_row[0];
                let mut pp_left = pp_row[0];
                let mut ppp_left = ppp_row[0];
                for k in 1..d2 {
                    let code = crate::read_code(model, overflow, &mut dec);
                    let rec = if code == UNPREDICTABLE {
                        f32::from_bits(dec.decode_bits_raw(32) as u32)
                    } else {
                        let pred = pp_row[k] + prev_row[k] + left - ppp_row[k] - pp_left - pr_left
                            + ppp_left;
                        pred + code as f32 * two_eb
                    };
                    cur_row[k] = rec;
                    ppp_left = ppp_row[k];
                    pp_left = pp_row[k];
                    pr_left = prev_row[k];
                    left = rec;
                }
            }
        }
        Tensor::from_vec(recon, &header.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression_ratio;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_tensor::stats::max_abs_error;
    use gld_tensor::TensorRng;
    use proptest::prelude::*;

    fn check_bound(data: &Tensor, eb: f32) -> (f64, f32) {
        let sz = SzCompressor::new();
        let (recon, size) = sz.roundtrip(data, eb);
        assert_eq!(recon.dims(), data.dims());
        let err = max_abs_error(data, &recon);
        assert!(
            err <= eb * 1.0001,
            "error {err} exceeds bound {eb} for dims {:?}",
            data.dims()
        );
        (compression_ratio(data, size), err)
    }

    #[test]
    fn error_bound_holds_on_all_synthetic_datasets() {
        let spec = FieldSpec::new(1, 8, 16, 16);
        for kind in DatasetKind::all() {
            let ds = generate(kind, &spec, 3);
            let frames = &ds.variables[0].frames;
            let range = frames.max() - frames.min();
            for rel in [1e-2, 1e-3] {
                let (ratio, _) = check_bound(frames, rel * range);
                assert!(ratio > 1.0, "no compression achieved on {kind:?}");
            }
        }
    }

    #[test]
    fn larger_bound_gives_higher_ratio() {
        let spec = FieldSpec::new(1, 8, 16, 16);
        let ds = generate(DatasetKind::E3sm, &spec, 5);
        let frames = &ds.variables[0].frames;
        let range = frames.max() - frames.min();
        let sz = SzCompressor::new();
        let loose = sz.compress(frames, 1e-2 * range).len();
        let tight = sz.compress(frames, 1e-4 * range).len();
        assert!(
            loose < tight,
            "loose {loose} should be smaller than tight {tight}"
        );
    }

    #[test]
    fn smooth_data_compresses_much_better_than_noise() {
        let mut rng = TensorRng::new(1);
        let noise = rng.randn(&[4, 16, 16]);
        let smooth = Tensor::from_vec(
            (0..4 * 16 * 16)
                .map(|i| ((i % 256) as f32 / 40.0).sin())
                .collect(),
            &[4, 16, 16],
        );
        let sz = SzCompressor::new();
        let eb = 1e-3;
        let noise_size = sz.compress(&noise, eb).len();
        let smooth_size = sz.compress(&smooth, eb).len();
        assert!(
            smooth_size * 2 < noise_size,
            "smooth {smooth_size} vs noise {noise_size}"
        );
    }

    #[test]
    fn handles_constant_and_tiny_inputs() {
        let sz = SzCompressor::new();
        let constant = Tensor::full(&[4, 4, 4], 3.75);
        let (recon, size) = sz.roundtrip(&constant, 1e-6);
        assert!(max_abs_error(&constant, &recon) <= 1e-6);
        assert!(size < constant.numel() * 4);
        let single = Tensor::from_vec(vec![42.0], &[1]);
        let (recon, _) = sz.roundtrip(&single, 1e-3);
        assert!((recon.data()[0] - 42.0).abs() <= 1e-3);
    }

    #[test]
    fn rank2_and_rank4_inputs_supported() {
        let mut rng = TensorRng::new(2);
        let sz = SzCompressor::new();
        let img = rng.randn(&[24, 24]);
        let (recon, _) = sz.roundtrip(&img, 1e-2);
        assert!(max_abs_error(&img, &recon) <= 1e-2 * 1.0001);
        let vol4 = rng.randn(&[2, 3, 8, 8]);
        let (recon, _) = sz.roundtrip(&vol4, 1e-2);
        assert_eq!(recon.dims(), vol4.dims());
        assert!(max_abs_error(&vol4, &recon) <= 1e-2 * 1.0001);
    }

    #[test]
    fn rank5_input_is_a_typed_error_not_a_panic() {
        let sz = SzCompressor::new();
        let t = Tensor::zeros(&[2, 2, 2, 2, 2]);
        let err = sz.try_compress(&t, 1e-3).unwrap_err();
        assert_eq!(err, BaselineError::UnsupportedRank { rank: 5 });
        assert!(err.to_string().contains("rank 5"));
    }

    #[test]
    fn dirty_scratch_produces_identical_frames() {
        // One scratch reused across blocks of different shapes must yield
        // exactly the bytes a fresh scratch yields.
        let mut rng = TensorRng::new(7);
        let sz = SzCompressor::new();
        let mut scratch = SzScratch::new();
        for dims in [vec![4usize, 12, 12], vec![9, 9], vec![2, 3, 5, 7], vec![64]] {
            let data = rng.randn(&dims).scale(2.0);
            let mut reused = Vec::new();
            sz.compress_into(&data, 1e-3, &mut scratch, &mut reused)
                .unwrap();
            let fresh = sz.compress(&data, 1e-3);
            assert_eq!(reused, fresh, "dims {dims:?}");
        }
    }

    #[test]
    fn shared_model_sentinel_roundtrips_smaller() {
        let mut rng = TensorRng::new(11);
        let data = rng.randn(&[4, 16, 16]);
        let sz = SzCompressor::new();
        let mut scratch = SzScratch::new();
        let cold = sz.compress(&data, 1e-3);
        let model = crate::embedded_frame_model(&cold).expect("cold frame embeds its model");
        let mut shared = Vec::new();
        sz.compress_into_shared(&data, 1e-3, Some(&model), &mut scratch, &mut shared)
            .unwrap();
        assert!(
            shared.len() < cold.len(),
            "shared {} should drop the model table of cold {}",
            shared.len(),
            cold.len()
        );
        assert!(crate::embedded_frame_model(&shared).is_none());
        let recon = sz.decompress_shared(&shared, Some(&model));
        assert_eq!(recon.data(), sz.decompress(&cold).data());
    }

    #[test]
    fn shared_model_falls_back_to_embedded_fit_when_overflow_coding_loses() {
        // A checkerboard quantises to a couple of distinct codes repeated
        // hundreds of times, all outside a constant-fitted model: paying 32
        // raw bits per occurrence loses badly to a tiny embedded fit, so
        // the frame must fall back byte-identical to a cold compress.
        let sz = SzCompressor::new();
        let mut scratch = SzScratch::new();
        let constant = Tensor::full(&[4, 8, 8], 1.0);
        let narrow = crate::embedded_frame_model(&sz.compress(&constant, 1e-3)).unwrap();
        let board = Tensor::from_vec(
            (0..4 * 8 * 8)
                .map(|i| (((i / 64) + (i / 8) % 8 + i % 8) % 2) as f32)
                .collect(),
            &[4, 8, 8],
        );
        let mut shared = Vec::new();
        sz.compress_into_shared(&board, 1e-3, Some(&narrow), &mut scratch, &mut shared)
            .unwrap();
        assert_eq!(shared, sz.compress(&board, 1e-3));
    }

    #[test]
    fn shared_model_overflow_codes_escaping_values_and_still_wins() {
        // Noise under a narrow model: almost every code escapes, but raw
        // 32-bit overflow coding still beats serialising a sparse model with
        // hundreds of near-unique entries — the frame stays on the shared
        // model and must round-trip exactly through the overflow path.
        let sz = SzCompressor::new();
        let mut scratch = SzScratch::new();
        let constant = Tensor::full(&[4, 8, 8], 1.0);
        let narrow = crate::embedded_frame_model(&sz.compress(&constant, 1e-3)).unwrap();
        let mut rng = TensorRng::new(12);
        let noise = rng.randn(&[4, 8, 8]).scale(4.0);
        let mut shared = Vec::new();
        sz.compress_into_shared(&noise, 1e-3, Some(&narrow), &mut scratch, &mut shared)
            .unwrap();
        let cold = sz.compress(&noise, 1e-3);
        assert!(
            shared.len() < cold.len(),
            "overflow coding {} should beat the embedded fit {}",
            shared.len(),
            cold.len()
        );
        assert!(crate::embedded_frame_model(&shared).is_none());
        let recon = sz.decompress_shared(&shared, Some(&narrow));
        assert_eq!(recon.data(), sz.decompress(&cold).data());
    }

    #[test]
    fn outliers_are_stored_verbatim() {
        // A field with huge spikes: the spikes must round-trip within bound.
        let mut data = Tensor::zeros(&[2, 8, 8]);
        data.set(&[0, 3, 3], 1e20);
        data.set(&[1, 7, 7], -1e20);
        let sz = SzCompressor::new();
        let (recon, _) = sz.roundtrip(&data, 1e-3);
        assert!((recon.at(&[0, 3, 3]) - 1e20).abs() <= 1e14); // f32 precision, not bound
        assert!(max_abs_error(&data, &recon) <= 1e14);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_error_bound_always_holds(
            seed in 0u64..500,
            eb_exp in -4i32..-1,
            d0 in 1usize..4,
            d1 in 4usize..12,
            d2 in 4usize..12,
        ) {
            let mut rng = TensorRng::new(seed);
            let data = rng.randn(&[d0, d1, d2]).scale(5.0);
            let eb = 10f32.powi(eb_exp) * 10.0;
            let sz = SzCompressor::new();
            let (recon, _) = sz.roundtrip(&data, eb);
            prop_assert!(max_abs_error(&data, &recon) <= eb * 1.0001);
        }
    }
}
