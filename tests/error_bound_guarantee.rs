//! Integration test for the paper's central reliability claim (§3.5): no
//! matter how well or badly the learned pipeline reconstructs, the PCA
//! post-processing step must always deliver the requested error bound, and
//! the auxiliary stream must be decodable on the decoder side.

use gld_core::{ErrorBoundConfig, GldCompressor, GldConfig, GldTrainingBudget, PcaErrorBound};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::nrmse;
use gld_tensor::TensorRng;

#[test]
fn bound_holds_across_targets_and_datasets() {
    let spec = FieldSpec::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 80,
        diffusion_steps: 80,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    for kind in [DatasetKind::E3sm, DatasetKind::Jhtdb] {
        let ds = generate(kind, &spec, 53);
        let config = GldConfig::tiny();
        let compressor = GldCompressor::train(config, &ds.variables, budget);
        let block = ds.variables[0].frames.slice_axis(0, 0, config.block_frames);
        for target in [2e-2f32, 5e-3, 1e-3] {
            let compressed = compressor.compress_block(&block, Some(target));
            let recon = compressor.decompress_block(&compressed);
            let achieved = nrmse(&block, &recon);
            assert!(
                achieved <= target * 1.01,
                "{kind:?} target {target}: achieved {achieved}"
            );
        }
    }
}

#[test]
fn bound_holds_even_for_a_deliberately_bad_reconstruction() {
    // The module must rescue an arbitrarily poor reconstruction; the cost is
    // only a larger auxiliary stream.
    let mut rng = TensorRng::new(99);
    let original = rng.randn(&[8, 16, 16]).scale(100.0);
    let garbage = rng.randn(&[8, 16, 16]); // uncorrelated with the original
    let module = PcaErrorBound::new(ErrorBoundConfig::default());
    let tau = PcaErrorBound::tau_for_nrmse(&original, 1e-3);
    let (corrected, aux, outcome) = module.apply(&original, &garbage, tau);
    assert!(nrmse(&original, &corrected) <= 1e-3 * 1.01);
    assert!(outcome.coefficients > 0);
    // Decoder-side replay matches the encoder-side corrected result.
    let replay = module.apply_from_aux(&garbage, &aux);
    assert!(replay.sub(&corrected).abs().max() < 1e-4);
}

#[test]
fn aux_stream_size_scales_with_reconstruction_quality() {
    // A better starting reconstruction needs a smaller correction stream —
    // the property that makes "learned compressor + guarantee" worthwhile at
    // all compared to coding the residual from scratch.
    let mut rng = TensorRng::new(7);
    let original = rng.randn(&[8, 16, 16]).scale(10.0);
    let good = original.add(&rng.randn(&[8, 16, 16]).scale(0.1));
    let bad = original.add(&rng.randn(&[8, 16, 16]).scale(3.0));
    let module = PcaErrorBound::new(ErrorBoundConfig::default());
    let tau = PcaErrorBound::tau_for_nrmse(&original, 2e-3);
    let (_, aux_good, _) = module.apply(&original, &good, tau);
    let (_, aux_bad, _) = module.apply(&original, &bad, tau);
    assert!(
        aux_good.len() < aux_bad.len(),
        "good recon aux {} should be smaller than bad recon aux {}",
        aux_good.len(),
        aux_bad.len()
    );
}
