//! Portable scalar reference kernels.  Every SIMD backend is proven
//! bit-identical to the functions in this module; their bodies are the
//! semantics of the crate and must only change together with every
//! accelerated path.

use crate::{SzPlane, SZ_MAX_CODE, SZ_UNPREDICTABLE, ZFP_ESCAPE, ZFP_MAX_CODE};

/// Branchless quantisation of one SZ residual: returns the code to emit,
/// the reconstructed value and whether the cell was predictable.  The
/// non-short-circuiting `&` lets the compiler turn the selection into
/// conditional moves.
#[inline(always)]
pub fn sz_quantize_cell(val: f32, pred: f32, two_eb: f32, abs_error: f32) -> (i32, f32, bool) {
    let q_f = ((val - pred) / two_eb).round();
    let q_i = q_f as i32;
    let rec = pred + q_f * two_eb;
    let ok = (q_f.abs() <= SZ_MAX_CODE as f32) & ((rec - val).abs() <= abs_error) & rec.is_finite();
    (
        if ok { q_i } else { SZ_UNPREDICTABLE },
        if ok { rec } else { val },
        ok,
    )
}

/// Row-wise interior walk of one plane: the allocation-free branchless loop
/// with the three `k - 1` neighbours carried in registers.  Association
/// order of the Lorenzo prediction is load-bearing — it matches the frozen
/// `gld_baselines::reference` walk bit for bit.
pub(crate) fn sz_plane(p: &mut SzPlane<'_>) {
    let d2 = p.d2;
    for j in 1..p.d1 {
        let row = j * d2;
        let (before, cur) = p.recon.split_at_mut(row);
        let cur_row = &mut cur[..d2];
        let prev_row = &before[row - d2..row];
        let pp_row = &p.prev[row..row + d2];
        let ppp_row = &p.prev[row - d2..row];
        let src_row = &p.src[row..row + d2];
        let codes_row = &mut p.codes[row..row + d2];
        let mut left = cur_row[0];
        let mut pr_left = prev_row[0];
        let mut pp_left = pp_row[0];
        let mut ppp_left = ppp_row[0];
        for k in 1..d2 {
            let val = src_row[k];
            let pred = pp_row[k] + prev_row[k] + left - ppp_row[k] - pp_left - pr_left + ppp_left;
            let (code, rec, _) = sz_quantize_cell(val, pred, p.two_eb, p.abs_error);
            codes_row[k] = code;
            cur_row[k] = rec;
            ppp_left = ppp_row[k];
            pp_left = pp_row[k];
            pr_left = prev_row[k];
            left = rec;
        }
    }
}

/// One 4-point transform pass along `axis` of a flat `4x4x4` tile; the
/// accumulation order (`acc = 0.0; acc += coef * v` for `n = 0..4`) is
/// load-bearing for bit-identity.
fn zfp_transform_axis(block: &mut [f32; 64], basis: &[[f32; 4]; 4], axis: usize, inverse: bool) {
    let stride = match axis {
        0 => 16,
        1 => 4,
        2 => 1,
        _ => unreachable!(),
    };
    for a in 0..4 {
        for b in 0..4 {
            let base = match axis {
                0 => a * 4 + b,
                1 => a * 16 + b,
                2 => a * 16 + b * 4,
                _ => unreachable!(),
            };
            let mut line = [0.0f32; 4];
            for (i, l) in line.iter_mut().enumerate() {
                *l = block[base + i * stride];
            }
            let mut out = [0.0f32; 4];
            for (k, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (n, &v) in line.iter().enumerate() {
                    acc += if inverse { basis[n][k] } else { basis[k][n] } * v;
                }
                *o = acc;
            }
            for (i, &o) in out.iter().enumerate() {
                block[base + i * stride] = o;
            }
        }
    }
}

/// Full separable tile transform: axes `0,1,2` forward, `2,1,0` with the
/// transposed basis for the inverse.
pub(crate) fn zfp_transform(block: &mut [f32; 64], basis: &[[f32; 4]; 4], inverse: bool) {
    let axes: [usize; 3] = if inverse { [2, 1, 0] } else { [0, 1, 2] };
    for axis in axes {
        zfp_transform_axis(block, basis, axis, inverse);
    }
}

/// Branchless tile quantisation; escaped coefficients append their clamped
/// raw value in tile order.
pub(crate) fn zfp_quantize(
    block: &[f32; 64],
    step: f32,
    codes: &mut [i32; 64],
    escapes: &mut Vec<i32>,
) {
    for (&c, out) in block.iter().zip(codes.iter_mut()) {
        let q = (c / step).round();
        let ok = (q.abs() <= ZFP_MAX_CODE as f32) & q.is_finite();
        *out = if ok { q as i32 } else { ZFP_ESCAPE };
        if !ok {
            escapes.push(q.clamp(i32::MIN as f32, i32::MAX as f32) as i32);
        }
    }
}

/// Forward scan of the histogram CDF from a LUT-provided starting bin.
#[inline]
pub(crate) fn find_bin(cdf: &[u32], mut bin: usize, target: u32) -> usize {
    while cdf[bin + 1] <= target {
        bin += 1;
    }
    bin
}

/// Longest common prefix of `a` and `b` — the LZ match extension loop.
#[inline]
pub(crate) fn match_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// The LZ 4-byte hash for one position.
#[inline(always)]
pub(crate) fn hash4_one(input: &[u8], at: usize, bits: u32) -> u32 {
    let v = u32::from_le_bytes([input[at], input[at + 1], input[at + 2], input[at + 3]]);
    v.wrapping_mul(0x9E37_79B1) >> (32 - bits)
}

/// Hashes of positions `0..out.len()` of `input`.
pub(crate) fn hash4_batch(input: &[u8], bits: u32, out: &mut [u32]) {
    debug_assert!(out.len() + 3 <= input.len() || out.is_empty());
    for (at, o) in out.iter_mut().enumerate() {
        *o = hash4_one(input, at, bits);
    }
}
