//! Diffusion model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Configuration of the conditional latent diffusion model.
///
/// The paper trains with 1000 denoising steps, 64 latent channels and
/// N = 16 frames on A100s; the defaults here keep the same structure at CPU
/// scale (the step count is configurable and swept by the Figure-5 bench).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffusionConfig {
    /// Latent channels of the VAE (input/output channels of the UNet).
    pub latent_channels: usize,
    /// Width of the UNet's hidden representation.
    pub model_channels: usize,
    /// Attention heads for both temporal and spatial attention.
    pub heads: usize,
    /// Sinusoidal timestep-embedding dimension.
    pub time_embed_dim: usize,
    /// Number of forward-process steps T used for training.
    pub train_steps: usize,
    /// Random seed for weight initialisation.
    pub seed: u64,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        DiffusionConfig {
            latent_channels: 4,
            model_channels: 16,
            heads: 2,
            time_embed_dim: 16,
            train_steps: 1000,
            seed: 0,
        }
    }
}

impl DiffusionConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        DiffusionConfig {
            latent_channels: 3,
            model_channels: 8,
            heads: 2,
            time_embed_dim: 8,
            train_steps: 100,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = DiffusionConfig::default();
        assert!(c.model_channels % c.heads == 0);
        assert!(c.time_embed_dim % 2 == 0);
        assert_eq!(c.train_steps, 1000);
    }

    #[test]
    fn tiny_is_smaller() {
        assert!(DiffusionConfig::tiny().model_channels < DiffusionConfig::default().model_channels);
    }
}
