//! Byte-wise renormalising range coder — the production entropy back end.
//!
//! Functionally equivalent to the bit-at-a-time arithmetic coder in
//! [`crate::arith`] (same cumulative-frequency interface, same `MAX_TOTAL`
//! contract) but renormalises **one byte at a time** with LZMA-style carry
//! propagation, so the hot loop is a couple of integer operations per
//! *symbol* instead of a branchy loop per *bit*.  Bypass bits are coded by
//! range halving — a shift and a compare, no division.
//!
//! The coder itself is table-free; the tables live in the symbol models
//! (`crate::models`), which precompute cumulative-frequency arrays for
//! encoding and a slot→bin lookup table for the decode-side symbol search.
//! The equivalence suite (`tests/hotpath_equivalence.rs` at the workspace
//! root, plus the property tests below) proves encode→decode is lossless
//! for arbitrary models and that both back ends decode their own streams to
//! identical symbols.

use crate::backend::{EntropyDecoder, EntropyEncoder};

/// Maximum allowed total frequency for a coding step (shared contract with
/// the arithmetic coder).
pub const MAX_TOTAL: u32 = crate::arith::MAX_TOTAL;

/// Renormalisation threshold: while `range < TOP` a byte is shifted out.
/// `TOP / MAX_TOTAL = 256`, so `range / total` never collapses to zero.
const TOP: u32 = 1 << 24;

/// Range encoder with byte-wise renormalisation and carry handling.
///
/// The first emitted byte is always the initial zero cache byte (plus a
/// possible carry), exactly as in the classic LZMA layout; the decoder
/// consumes it before filling its code register.
#[derive(Debug, Clone)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    /// Number of buffered bytes awaiting a possible carry: the cache byte
    /// itself plus any run of `0xFF` bytes after it.
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::with_buffer(Vec::new())
    }

    /// Creates an empty encoder that writes into `buf` (cleared first).
    /// Recycling the buffer returned by [`RangeEncoder::finish`] lets a hot
    /// loop re-encode stream after stream with no steady-state allocation.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: buf,
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // Keep only the 24 bits below the cached byte; the top byte now
        // lives in `cache` (or in the pending-0xFF run).
        self.low = u64::from((self.low as u32) << 8);
    }

    /// Encodes one symbol described by its cumulative interval
    /// `[cum_low, cum_high)` out of `total`.
    ///
    /// # Panics
    /// Panics if the interval is empty or `total` exceeds [`MAX_TOTAL`].
    #[inline]
    pub fn encode(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        debug_assert!(cum_low < cum_high, "empty coding interval");
        debug_assert!(cum_high <= total, "interval exceeds total");
        debug_assert!(total <= MAX_TOTAL, "total {total} exceeds MAX_TOTAL");
        let r = self.range / total;
        self.low += u64::from(r) * u64::from(cum_low);
        // The top symbol absorbs the division remainder so the full range is
        // always covered (the decoder clamps its target the same way).
        self.range = if cum_high == total {
            self.range - r * cum_low
        } else {
            r * (cum_high - cum_low)
        };
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes a raw bit without modelling (bypass mode) by range halving —
    /// no division, no frequency table.
    #[inline]
    pub fn encode_bit_raw(&mut self, bit: bool) {
        let half = self.range >> 1;
        if bit {
            self.low += u64::from(half);
            self.range -= half;
        } else {
            self.range = half;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `bits` low-order bits of `value` in bypass mode, MSB first.
    pub fn encode_bits_raw(&mut self, value: u64, bits: u32) {
        for i in (0..bits).rev() {
            self.encode_bit_raw((value >> i) & 1 == 1);
        }
    }

    /// Flushes the coder and returns the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a compressed byte slice.  Reads zero bytes past the
/// end (the tail of a stream only disambiguates the final interval).
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    bytes: &'a [u8],
    pos: usize,
    /// `range / total` from the most recent [`RangeDecoder::decode_target`],
    /// reused by [`RangeDecoder::decode_update`] so the division happens
    /// once per symbol.
    last_div: u32,
    #[cfg(debug_assertions)]
    last_total: u32,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over `bytes` (as produced by
    /// [`RangeEncoder::finish`]).
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut dec = RangeDecoder {
            range: u32::MAX,
            code: 0,
            bytes,
            pos: 0,
            last_div: 0,
            #[cfg(debug_assertions)]
            last_total: 0,
        };
        // Skip the encoder's initial cache byte, then fill the code register.
        dec.pos = 1;
        for _ in 0..4 {
            dec.code = (dec.code << 8) | u32::from(dec.next_byte());
        }
        dec
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Bytes of input consumed so far, **including** zero padding read past
    /// the end of the slice.  Hardened decoders compare this against the
    /// real input length to detect truncated streams instead of decoding
    /// padding symbols indefinitely.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Returns the cumulative-frequency position of the next symbol, to be
    /// looked up against the model's CDF.  `total` must match the total used
    /// at encode time.  The internal `range / total` quotient is cached for
    /// the matching [`RangeDecoder::decode_update`] call, which **must**
    /// follow before the next `decode_target`.
    #[inline]
    pub fn decode_target(&mut self, total: u32) -> u32 {
        let r = self.range / total;
        self.last_div = r;
        #[cfg(debug_assertions)]
        {
            self.last_total = total;
        }
        (self.code / r).min(total - 1)
    }

    /// Consumes the symbol whose cumulative interval is
    /// `[cum_low, cum_high)` out of `total` (as resolved from
    /// [`RangeDecoder::decode_target`]'s return value).
    #[inline]
    pub fn decode_update(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        debug_assert!(cum_low < cum_high, "empty coding interval");
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.last_total, total,
            "decode_update total must match the preceding decode_target"
        );
        let r = self.last_div;
        self.code -= r * cum_low;
        self.range = if cum_high == total {
            self.range - r * cum_low
        } else {
            r * (cum_high - cum_low)
        };
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
    }

    /// Decodes one raw (bypass) bit by range halving.
    #[inline]
    pub fn decode_bit_raw(&mut self) -> bool {
        let half = self.range >> 1;
        let bit = self.code >= half;
        if bit {
            self.code -= half;
            self.range -= half;
        } else {
            self.range = half;
        }
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
        bit
    }

    /// Decodes `bits` bypass bits into an unsigned value, MSB first.
    pub fn decode_bits_raw(&mut self, bits: u32) -> u64 {
        let mut v = 0u64;
        for _ in 0..bits {
            v = (v << 1) | u64::from(self.decode_bit_raw());
        }
        v
    }
}

impl EntropyEncoder for RangeEncoder {
    #[inline]
    fn encode(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        RangeEncoder::encode(self, cum_low, cum_high, total);
    }

    #[inline]
    fn encode_bits_raw(&mut self, value: u64, bits: u32) {
        RangeEncoder::encode_bits_raw(self, value, bits);
    }

    fn finish(self) -> Vec<u8> {
        RangeEncoder::finish(self)
    }
}

impl EntropyDecoder for RangeDecoder<'_> {
    #[inline]
    fn decode_target(&mut self, total: u32) -> u32 {
        RangeDecoder::decode_target(self, total)
    }

    #[inline]
    fn decode_update(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        RangeDecoder::decode_update(self, cum_low, cum_high, total);
    }

    #[inline]
    fn decode_bits_raw(&mut self, bits: u32) -> u64 {
        RangeDecoder::decode_bits_raw(self, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Encodes and decodes a symbol stream against a fixed frequency table.
    fn roundtrip(symbols: &[usize], freqs: &[u32]) -> Vec<usize> {
        let total: u32 = freqs.iter().sum();
        let cdf: Vec<u32> = std::iter::once(0)
            .chain(freqs.iter().scan(0u32, |acc, &f| {
                *acc += f;
                Some(*acc)
            }))
            .collect();
        let mut enc = RangeEncoder::new();
        for &s in symbols {
            enc.encode(cdf[s], cdf[s + 1], total);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut out = Vec::with_capacity(symbols.len());
        for _ in 0..symbols.len() {
            let target = dec.decode_target(total);
            let s = cdf.partition_point(|&c| c <= target) - 1;
            dec.decode_update(cdf[s], cdf[s + 1], total);
            out.push(s);
        }
        out
    }

    #[test]
    fn roundtrip_small_known_stream() {
        let freqs = vec![5, 1, 10, 3];
        let symbols = vec![0, 2, 2, 1, 3, 0, 2, 2, 2, 3, 1, 0];
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn roundtrip_single_symbol_alphabet() {
        let freqs = vec![7];
        let symbols = vec![0; 100];
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn roundtrip_empty_stream() {
        let freqs = vec![1, 1];
        let symbols: Vec<usize> = vec![];
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn roundtrip_max_total_and_extreme_skew() {
        // Drives the carry/renormalisation machinery with a near-degenerate
        // distribution at the largest permitted total.
        let freqs = vec![MAX_TOTAL - 3, 1, 1, 1];
        let symbols: Vec<usize> = (0..4000).map(|i| usize::from(i % 997 == 0)).collect();
        assert_eq!(roundtrip(&symbols, &freqs), symbols);
    }

    #[test]
    fn skewed_distribution_compresses_below_uniform() {
        let freqs = [1000, 8];
        let symbols: Vec<usize> = (0..2000).map(|i| usize::from(i % 100 == 0)).collect();
        let total: u32 = freqs.iter().sum();
        let cdf = [0u32, freqs[0], total];
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(cdf[s], cdf[s + 1], total);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() * 8 < symbols.len() / 2,
            "skewed stream took {} bits for {} symbols",
            bytes.len() * 8,
            symbols.len()
        );
    }

    #[test]
    fn bypass_bits_roundtrip() {
        let mut enc = RangeEncoder::new();
        enc.encode_bits_raw(0b1011_0010_1111, 12);
        enc.encode_bits_raw(u32::MAX as u64, 32);
        enc.encode_bits_raw(0, 5);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        assert_eq!(dec.decode_bits_raw(12), 0b1011_0010_1111);
        assert_eq!(dec.decode_bits_raw(32), u32::MAX as u64);
        assert_eq!(dec.decode_bits_raw(5), 0);
    }

    #[test]
    fn mixed_modelled_and_bypass_roundtrip() {
        let freqs = [3u32, 9, 4];
        let total: u32 = freqs.iter().sum();
        let cdf = [0u32, 3, 12, 16];
        let mut enc = RangeEncoder::new();
        enc.encode(cdf[1], cdf[2], total);
        enc.encode_bits_raw(0xABCD, 16);
        enc.encode(cdf[0], cdf[1], total);
        enc.encode(cdf[2], cdf[3], total);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let t = dec.decode_target(total);
        assert!((cdf[1]..cdf[2]).contains(&t));
        dec.decode_update(cdf[1], cdf[2], total);
        assert_eq!(dec.decode_bits_raw(16), 0xABCD);
        let t = dec.decode_target(total);
        assert!(t < cdf[1]);
        dec.decode_update(cdf[0], cdf[1], total);
        let t = dec.decode_target(total);
        assert!(t >= cdf[2]);
        dec.decode_update(cdf[2], cdf[3], total);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_roundtrip_arbitrary_streams(
            freqs in prop::collection::vec(1u32..200, 2..12),
            raw_symbols in prop::collection::vec(0usize..1000, 0..300),
        ) {
            let k = freqs.len();
            let symbols: Vec<usize> = raw_symbols.iter().map(|&s| s % k).collect();
            prop_assert_eq!(roundtrip(&symbols, &freqs), symbols);
        }

        #[test]
        fn prop_bypass_roundtrip(values in prop::collection::vec(0u64..u32::MAX as u64, 1..64)) {
            let mut enc = RangeEncoder::new();
            for &v in &values {
                enc.encode_bits_raw(v, 32);
            }
            let bytes = enc.finish();
            let mut dec = RangeDecoder::new(&bytes);
            for &v in &values {
                prop_assert_eq!(dec.decode_bits_raw(32), v);
            }
        }

        #[test]
        fn prop_mixed_bypass_and_modelled(
            ops in prop::collection::vec(0u32..2000, 1..200),
        ) {
            // Interleaves modelled symbols (uniform 8-symbol alphabet) with
            // bypass payloads in one stream; the low bit of each op picks
            // the path, the rest is the payload.
            let cdf: Vec<u32> = (0..=8).map(|i| i * 4).collect();
            let mut enc = RangeEncoder::new();
            for &op in &ops {
                let v = op >> 1;
                if op & 1 == 0 {
                    let s = (v % 8) as usize;
                    enc.encode(cdf[s], cdf[s + 1], 32);
                } else {
                    enc.encode_bits_raw(u64::from(v % 1024), 10);
                }
            }
            let bytes = enc.finish();
            let mut dec = RangeDecoder::new(&bytes);
            for &op in &ops {
                let v = op >> 1;
                if op & 1 == 0 {
                    let s = (v % 8) as usize;
                    let t = dec.decode_target(32);
                    let got = cdf.partition_point(|&c| c <= t) - 1;
                    prop_assert_eq!(got, s);
                    dec.decode_update(cdf[got], cdf[got + 1], 32);
                } else {
                    prop_assert_eq!(dec.decode_bits_raw(10), u64::from(v % 1024));
                }
            }
        }
    }
}
