//! Symmetric eigendecomposition (cyclic Jacobi) used by the PCA-based
//! error-bound guarantee module in `gld-core`.
//!
//! The matrices involved are small covariance matrices (the residual blocks
//! are projected onto at most a few hundred principal directions), so a
//! straightforward Jacobi sweep is both simple and fast enough.

use crate::tensor::Tensor;

/// Result of a symmetric eigendecomposition: `a = v · diag(λ) · vᵀ`.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted in descending order.
    pub eigenvalues: Vec<f32>,
    /// Eigenvectors as the *columns* of an `n × n` matrix, in the same order
    /// as [`SymmetricEigen::eigenvalues`].
    pub eigenvectors: Tensor,
}

/// Computes the eigendecomposition of a symmetric `n × n` matrix with the
/// cyclic Jacobi method.
///
/// # Panics
/// Panics if the input is not a square rank-2 tensor.  The input is assumed
/// symmetric; only the upper triangle is read when forming rotations but the
/// full matrix is updated, so mild asymmetry from floating-point noise is
/// tolerated.
pub fn symmetric_eigen(a: &Tensor, max_sweeps: usize, tol: f32) -> SymmetricEigen {
    assert_eq!(a.rank(), 2, "symmetric_eigen requires a matrix");
    let n = a.dim(0);
    assert_eq!(n, a.dim(1), "symmetric_eigen requires a square matrix");
    let mut m: Vec<f64> = a.data().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off_diag_norm = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[i * n + j] * m[i * n + j];
                }
            }
        }
        s.sqrt()
    };

    for _ in 0..max_sweeps {
        if off_diag_norm(&m) <= tol as f64 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation on rows/columns p and q.
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp - s * akq;
                    m[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk - s * aqk;
                    m[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Collect eigenpairs and sort by descending eigenvalue.
    let mut pairs: Vec<(f32, Vec<f32>)> = (0..n)
        .map(|i| {
            let lambda = m[i * n + i] as f32;
            let vec: Vec<f32> = (0..n).map(|r| v[r * n + i] as f32).collect();
            (lambda, vec)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let eigenvalues: Vec<f32> = pairs.iter().map(|(l, _)| *l).collect();
    let mut vec_data = vec![0.0f32; n * n];
    for (col, (_, veci)) in pairs.iter().enumerate() {
        for row in 0..n {
            vec_data[row * n + col] = veci[row];
        }
    }
    SymmetricEigen {
        eigenvalues,
        eigenvectors: Tensor::from_vec(vec_data, &[n, n]),
    }
}

/// Computes the top-`k` principal components of a data matrix `x` of shape
/// `[samples, features]`.
///
/// Returns `(components, explained_variance)` where `components` has shape
/// `[features, k]` with orthonormal columns.  The data is *not* centred; the
/// caller decides whether to remove the mean (the error-bound module operates
/// on residuals that are already near zero mean).
pub fn principal_components(x: &Tensor, k: usize) -> (Tensor, Vec<f32>) {
    assert_eq!(
        x.rank(),
        2,
        "principal_components requires [samples, features]"
    );
    let features = x.dim(1);
    let k = k.min(features);
    // Covariance (Gram) matrix scaled by the sample count.
    let xt = x.transpose2();
    let cov = xt.matmul(x).scale(1.0 / x.dim(0).max(1) as f32);
    let eig = symmetric_eigen(&cov, 64, 1e-9);
    let components = eig.eigenvectors.slice_axis(1, 0, k);
    let variance = eig.eigenvalues[..k].to_vec();
    (components, variance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::TensorRng;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0], &[3, 3]);
        let e = symmetric_eigen(&a, 32, 1e-10);
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-5);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-5);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2_eigenpair() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]);
        let e = symmetric_eigen(&a, 32, 1e-10);
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-5);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-5);
        // Leading eigenvector is (1,1)/sqrt(2) up to sign.
        let v0 = (e.eigenvectors.at(&[0, 0]), e.eigenvectors.at(&[1, 0]));
        assert!((v0.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-4);
        assert!((v0.0 - v0.1).abs() < 1e-4);
    }

    #[test]
    fn reconstruction_from_eigenpairs() {
        let mut rng = TensorRng::new(21);
        let b = rng.randn(&[5, 5]);
        let a = b.matmul(&b.transpose2()); // symmetric PSD
        let e = symmetric_eigen(&a, 64, 1e-10);
        // Rebuild A = V diag(λ) Vᵀ.
        let n = 5;
        let mut lambda = Tensor::zeros(&[n, n]);
        for i in 0..n {
            lambda.set(&[i, i], e.eigenvalues[i]);
        }
        let rebuilt = e
            .eigenvectors
            .matmul(&lambda)
            .matmul(&e.eigenvectors.transpose2());
        let err = rebuilt.sub(&a).abs().max();
        assert!(err < 1e-2, "reconstruction error {err}");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut rng = TensorRng::new(33);
        let b = rng.randn(&[6, 6]);
        let a = b.matmul(&b.transpose2());
        let e = symmetric_eigen(&a, 64, 1e-10);
        let vtv = e.eigenvectors.transpose2().matmul(&e.eigenvectors);
        let err = vtv.sub(&Tensor::eye(6)).abs().max();
        assert!(err < 1e-3, "orthonormality error {err}");
    }

    #[test]
    fn principal_components_capture_dominant_direction() {
        // Samples concentrated along (1, 1): the first PC must align with it.
        let mut rng = TensorRng::new(8);
        let n = 200;
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let t = rng.sample_normal() * 5.0;
            let noise = rng.sample_normal() * 0.1;
            data.push(t + noise);
            data.push(t - noise);
        }
        let x = Tensor::from_vec(data, &[n, 2]);
        let (pcs, var) = principal_components(&x, 2);
        assert_eq!(pcs.dims(), &[2, 2]);
        assert!(var[0] > 10.0 * var[1]);
        let ratio = (pcs.at(&[0, 0]) / pcs.at(&[1, 0])).abs();
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "first PC not along (1,1): ratio {ratio}"
        );
    }
}
