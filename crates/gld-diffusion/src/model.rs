//! Keyframe-conditioned diffusion (paper §3.3, Algorithm 1): the forward
//! process only noises the frames to be generated, the clean keyframe
//! latents are spliced back in with the ⊕ operator before every network
//! call, and sampling therefore interpolates the missing frames while
//! reproducing the keyframes exactly.

use crate::config::DiffusionConfig;
use crate::schedule::NoiseSchedule;
use crate::unet::SpaceTimeUnet;
use gld_nn::loss::masked_frame_mse;
use gld_nn::prelude::*;
use gld_tensor::{Tensor, TensorRng};

/// Partition of the N frames of a block into conditioning (keyframe) and
/// generated index sets: `G ∪ C = {0..N}`, `G ∩ C = ∅`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FramePartition {
    /// Indices of the conditioning keyframes (set C).
    pub conditioning: Vec<usize>,
    /// Indices of the frames to generate (set G).
    pub generated: Vec<usize>,
    /// Total number of frames N.
    pub total: usize,
}

impl FramePartition {
    /// Builds a partition from the conditioning set; every other frame index
    /// in `0..total` becomes a generated frame.
    pub fn from_conditioning(total: usize, conditioning: &[usize]) -> Self {
        assert!(total > 0, "empty block");
        let mut seen = vec![false; total];
        for &c in conditioning {
            assert!(
                c < total,
                "conditioning index {c} out of range (N = {total})"
            );
            assert!(!seen[c], "duplicate conditioning index {c}");
            seen[c] = true;
        }
        let generated: Vec<usize> = (0..total).filter(|&i| !seen[i]).collect();
        assert!(
            !generated.is_empty(),
            "at least one frame must be generated (all {total} frames are keyframes)"
        );
        FramePartition {
            conditioning: conditioning.to_vec(),
            generated,
            total,
        }
    }

    /// Number of keyframes K.
    pub fn num_conditioning(&self) -> usize {
        self.conditioning.len()
    }

    /// Number of generated frames.
    pub fn num_generated(&self) -> usize {
        self.generated.len()
    }
}

/// The ⊕ operator (paper §3.3): keeps `clean` on the conditioning indices and
/// `noisy` on the generated indices.
pub fn splice_frames(noisy: &Tensor, clean: &Tensor, partition: &FramePartition) -> Tensor {
    assert_eq!(noisy.dims(), clean.dims(), "splice shape mismatch");
    assert_eq!(
        noisy.dim(0),
        partition.total,
        "partition does not match block"
    );
    let mut out = noisy.clone();
    let cond_frames = clean.index_select(0, &partition.conditioning);
    out.index_assign(0, &partition.conditioning, &cond_frames);
    out
}

/// Conditional latent diffusion model: UNet + schedule + conditioning logic.
pub struct ConditionalDiffusion {
    unet: SpaceTimeUnet,
    schedule: NoiseSchedule,
    config: DiffusionConfig,
}

impl ConditionalDiffusion {
    /// Builds a model with a linear schedule of `config.train_steps` steps.
    pub fn new(config: DiffusionConfig) -> Self {
        ConditionalDiffusion {
            unet: SpaceTimeUnet::new(config),
            schedule: NoiseSchedule::linear(config.train_steps),
            config,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &DiffusionConfig {
        &self.config
    }

    /// The current noise schedule.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// The denoising network.
    pub fn unet(&self) -> &SpaceTimeUnet {
        &self.unet
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        self.unet.parameters()
    }

    /// Replaces the schedule with a shorter one (few-step fine-tuning /
    /// sampling, paper §4.6).  The UNet weights are kept.
    pub fn retime(&mut self, steps: usize) {
        self.schedule = NoiseSchedule::linear(steps);
    }

    /// One training objective evaluation (Algorithm 1, lines 3–12): noise the
    /// generated frames at a random timestep, splice the clean keyframes in,
    /// run the network and compute the masked-MSE loss (Eq. 7).
    ///
    /// `y0` is the min-max-normalised latent block `[N, C, h, w]`.
    pub fn training_loss(
        &self,
        tape: &Tape,
        y0: &Tensor,
        partition: &FramePartition,
        rng: &mut TensorRng,
    ) -> Var {
        assert_eq!(y0.dim(0), partition.total, "block/partition mismatch");
        let t = rng.sample_index(self.schedule.steps());
        let (y_t_all, eps) = self.schedule.add_noise(y0, t, rng);
        let y_input = splice_frames(&y_t_all, y0, partition);
        let eps_hat = self.unet.forward(tape, &tape.constant(y_input), t);
        let eps_target = tape.constant(eps);
        masked_frame_mse(&eps_hat, &eps_target, &partition.generated)
    }

    /// Generates the missing frames of a block by reverse diffusion
    /// (DDIM-style deterministic sampling over `num_steps` respaced
    /// timesteps), conditioning on the keyframe latents.
    ///
    /// `y_cond` must contain the clean keyframe latents at the conditioning
    /// indices; the content of the generated indices is ignored.  The result
    /// contains the keyframes untouched and the generated frames filled in.
    pub fn generate(
        &self,
        y_cond: &Tensor,
        partition: &FramePartition,
        num_steps: usize,
        rng: &mut TensorRng,
    ) -> Tensor {
        assert_eq!(y_cond.dim(0), partition.total, "block/partition mismatch");
        let timesteps = self.schedule.respaced_timesteps(num_steps);
        // Start from pure noise on the generated frames.
        let noise = rng.randn(y_cond.dims());
        let mut y = splice_frames(&noise, y_cond, partition);
        for (i, &t) in timesteps.iter().enumerate() {
            let tape = Tape::new();
            let eps_hat = self
                .unet
                .forward(&tape, &tape.constant(y.clone()), t)
                .value();
            let t_prev = timesteps.get(i + 1).copied();
            let stepped = self.schedule.ddim_step(&y, &eps_hat, t, t_prev);
            y = splice_frames(&stepped, y_cond, partition);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition() -> FramePartition {
        FramePartition::from_conditioning(8, &[0, 3, 7])
    }

    #[test]
    fn partition_invariants() {
        let p = partition();
        assert_eq!(p.num_conditioning(), 3);
        assert_eq!(p.num_generated(), 5);
        // G and C are disjoint and cover everything.
        let mut all: Vec<usize> = p
            .conditioning
            .iter()
            .chain(p.generated.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one frame must be generated")]
    fn partition_rejects_all_keyframes() {
        FramePartition::from_conditioning(3, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn partition_rejects_duplicates() {
        FramePartition::from_conditioning(4, &[1, 1]);
    }

    #[test]
    fn splice_keeps_clean_keyframes() {
        let mut rng = TensorRng::new(0);
        let clean = rng.randn(&[8, 2, 3, 3]);
        let noisy = rng.randn(&[8, 2, 3, 3]);
        let p = partition();
        let spliced = splice_frames(&noisy, &clean, &p);
        for &c in &p.conditioning {
            assert_eq!(
                spliced.index_select(0, &[c]),
                clean.index_select(0, &[c]),
                "keyframe {c} was modified"
            );
        }
        for &g in &p.generated {
            assert_eq!(spliced.index_select(0, &[g]), noisy.index_select(0, &[g]));
        }
    }

    #[test]
    fn training_loss_is_finite_and_backpropagates() {
        let model = ConditionalDiffusion::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(1);
        let y0 = rng.rand_uniform(&[8, 3, 4, 4], -1.0, 1.0);
        let tape = Tape::new();
        let loss = model.training_loss(&tape, &y0, &partition(), &mut rng);
        assert!(loss.value().item().is_finite());
        loss.backward();
        assert!(model.parameters().grad_norm() > 0.0);
    }

    #[test]
    fn generation_preserves_keyframes_exactly() {
        let model = ConditionalDiffusion::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(2);
        let y_cond = rng.rand_uniform(&[8, 3, 4, 4], -1.0, 1.0);
        let p = partition();
        let out = model.generate(&y_cond, &p, 4, &mut rng);
        assert_eq!(out.dims(), y_cond.dims());
        for &c in &p.conditioning {
            assert_eq!(
                out.index_select(0, &[c]),
                y_cond.index_select(0, &[c]),
                "keyframe {c} was altered by sampling"
            );
        }
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn retime_shortens_the_schedule_but_keeps_weights() {
        let mut model = ConditionalDiffusion::new(DiffusionConfig::tiny());
        let before = model.parameters().num_scalars();
        model.retime(8);
        assert_eq!(model.schedule().steps(), 8);
        assert_eq!(model.parameters().num_scalars(), before);
    }

    #[test]
    fn more_sampling_steps_is_not_worse_on_random_net() {
        // Sanity: sampling runs for several step counts without blowing up.
        let model = ConditionalDiffusion::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(3);
        let y_cond = rng.rand_uniform(&[4, 3, 4, 4], -1.0, 1.0);
        let p = FramePartition::from_conditioning(4, &[0, 3]);
        for steps in [1usize, 2, 8] {
            let out = model.generate(&y_cond, &p, steps, &mut rng);
            assert!(
                out.abs().max() < 100.0,
                "sampling diverged at {steps} steps"
            );
        }
    }
}
