//! Entropy back-end abstraction.
//!
//! The symbol models in [`crate::models`] are generic over these traits so
//! the same model code drives both the production byte-wise range coder
//! ([`crate::range`]) and the bit-at-a-time arithmetic coder
//! ([`crate::arith`]) kept as the reference/oracle implementation.  The
//! equivalence suite uses that genericity to prove the two back ends decode
//! identical symbol streams, and the hot-path benchmark uses it to measure
//! the optimized kernels against the exact pre-optimisation coding path.

use crate::arith::{ArithmeticDecoder, ArithmeticEncoder};
use crate::range::{RangeDecoder, RangeEncoder};

/// Sink side of an entropy coder: symbols are pushed as cumulative-frequency
/// intervals, escapes as raw bits.
pub trait EntropyEncoder {
    /// Encodes one symbol described by its cumulative interval
    /// `[cum_low, cum_high)` out of `total`.
    fn encode(&mut self, cum_low: u32, cum_high: u32, total: u32);

    /// Encodes `bits` low-order bits of `value` without modelling, MSB
    /// first.
    fn encode_bits_raw(&mut self, value: u64, bits: u32);

    /// Flushes the coder and returns the compressed bytes.
    fn finish(self) -> Vec<u8>
    where
        Self: Sized;
}

/// Source side of an entropy coder.  `decode_target` resolves the next
/// symbol's cumulative position; `decode_update` must follow with the
/// matching interval (same `total`) before the next `decode_target`.
pub trait EntropyDecoder {
    /// Returns the cumulative-frequency position of the next symbol.
    fn decode_target(&mut self, total: u32) -> u32;

    /// Consumes the symbol whose cumulative interval is
    /// `[cum_low, cum_high)` out of `total`.
    fn decode_update(&mut self, cum_low: u32, cum_high: u32, total: u32);

    /// Decodes `bits` bypass bits into an unsigned value, MSB first.
    fn decode_bits_raw(&mut self, bits: u32) -> u64;
}

/// A matched encoder/decoder pair, used to parameterise whole compression
/// paths (the rule-based codecs' reference implementations take a backend
/// type parameter so the benchmark can run the *pre-optimisation* coder).
pub trait EntropyBackend {
    /// The encoder type of this back end.
    type Encoder: EntropyEncoder;
    /// The decoder type of this back end.
    type Decoder<'a>: EntropyDecoder;

    /// Creates an empty encoder.
    fn encoder() -> Self::Encoder;

    /// Creates a decoder over a finished stream.
    fn decoder(bytes: &[u8]) -> Self::Decoder<'_>;
}

/// The production back end: byte-wise renormalising range coder.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeBackend;

impl EntropyBackend for RangeBackend {
    type Encoder = RangeEncoder;
    type Decoder<'a> = RangeDecoder<'a>;

    fn encoder() -> RangeEncoder {
        RangeEncoder::new()
    }

    fn decoder(bytes: &[u8]) -> RangeDecoder<'_> {
        RangeDecoder::new(bytes)
    }
}

/// The reference back end: CACM-87 style bit-at-a-time arithmetic coder.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArithmeticBackend;

impl EntropyBackend for ArithmeticBackend {
    type Encoder = ArithmeticEncoder;
    type Decoder<'a> = ArithmeticDecoder<'a>;

    fn encoder() -> ArithmeticEncoder {
        ArithmeticEncoder::new()
    }

    fn decoder(bytes: &[u8]) -> ArithmeticDecoder<'_> {
        ArithmeticDecoder::new(bytes)
    }
}

impl EntropyEncoder for ArithmeticEncoder {
    #[inline]
    fn encode(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        ArithmeticEncoder::encode(self, cum_low, cum_high, total);
    }

    #[inline]
    fn encode_bits_raw(&mut self, value: u64, bits: u32) {
        ArithmeticEncoder::encode_bits_raw(self, value, bits);
    }

    fn finish(self) -> Vec<u8> {
        ArithmeticEncoder::finish(self)
    }
}

impl EntropyDecoder for ArithmeticDecoder<'_> {
    #[inline]
    fn decode_target(&mut self, total: u32) -> u32 {
        ArithmeticDecoder::decode_target(self, total)
    }

    #[inline]
    fn decode_update(&mut self, cum_low: u32, cum_high: u32, total: u32) {
        ArithmeticDecoder::decode_update(self, cum_low, cum_high, total);
    }

    #[inline]
    fn decode_bits_raw(&mut self, bits: u32) -> u64 {
        ArithmeticDecoder::decode_bits_raw(self, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One generic roundtrip exercised through both back ends — the trait
    /// surface itself must be lossless regardless of the coder underneath.
    fn roundtrip_via<B: EntropyBackend>() {
        let cdf = [0u32, 10, 12, 30];
        let symbols = [0usize, 2, 1, 2, 2, 0, 1];
        let mut enc = B::encoder();
        for &s in &symbols {
            enc.encode(cdf[s], cdf[s + 1], 30);
            enc.encode_bits_raw(s as u64, 7);
        }
        let bytes = enc.finish();
        let mut dec = B::decoder(&bytes);
        for &s in &symbols {
            let t = dec.decode_target(30);
            let got = cdf.partition_point(|&c| c <= t) - 1;
            assert_eq!(got, s);
            dec.decode_update(cdf[got], cdf[got + 1], 30);
            assert_eq!(dec.decode_bits_raw(7), s as u64);
        }
    }

    #[test]
    fn both_backends_roundtrip_through_the_trait_surface() {
        roundtrip_via::<RangeBackend>();
        roundtrip_via::<ArithmeticBackend>();
    }
}
