//! Regenerates the paper's headline claims (§1 / §4.7): the compression-ratio
//! improvement of the proposed method over the best rule-based compressor
//! (SZ3) and over the strongest learned baseline (VAE-SR) at matched NRMSE,
//! per dataset.  The paper reports 4–10× over SZ3 and 20–63% over VAE-SR.

use gld_baselines::{ErrorBoundedCompressor, SzCompressor};
use gld_bench::{train_on, write_result};
use gld_core::{
    ErrorBoundConfig, LearnedBaseline, LearnedBaselineKind, PcaErrorBound, RateSweep,
};
use gld_datasets::blocks::temporal_windows;
use gld_datasets::DatasetKind;
use gld_tensor::Tensor;

const NRMSE_TARGETS: [f32; 4] = [2e-2, 1e-2, 5e-3, 2e-3];
const MATCH_NRMSE: f32 = 1e-2;

fn main() {
    let mut csv = String::from("dataset,ours_vs_sz3,ours_vs_vaesr\n");
    println!("Headline claims — CR improvement at matched NRMSE = {MATCH_NRMSE:.0e}\n");
    println!(
        "{:<10} {:>16} {:>16}   (paper: 4-10x over SZ3, +20-63% over VAE-SR)",
        "dataset", "vs SZ3-like", "vs VAE-SR"
    );
    for kind in DatasetKind::all() {
        let (compressor, dataset) = train_on(kind, 808 + kind as u64);
        let n = compressor.config().block_frames;
        let blocks: Vec<Tensor> = dataset
            .variables
            .iter()
            .flat_map(|v| temporal_windows(v, n).into_iter().map(|w| w.data))
            .collect();

        // Ours.
        let mut ours = RateSweep::new("Ours", kind.name());
        for &target in &NRMSE_TARGETS {
            let (mut orig, mut comp, mut sq, mut count) = (0usize, 0usize, 0.0f64, 0usize);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for block in &blocks {
                let c = compressor.compress_block(block, Some(target));
                let recon = compressor.decompress_block(&c);
                orig += c.original_bytes();
                comp += c.total_bytes();
                for (a, b) in block.data().iter().zip(recon.data()) {
                    sq += ((a - b) as f64).powi(2);
                }
                count += block.numel();
                lo = lo.min(block.min());
                hi = hi.max(block.max());
            }
            ours.push(
                orig as f64 / comp as f64,
                ((sq / count as f64).sqrt() as f32) / (hi - lo).max(1e-30),
            );
        }

        // VAE-SR baseline (per-frame latents + same post-processing).
        let module = PcaErrorBound::new(ErrorBoundConfig::default());
        let vaesr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, compressor.vae(), None);
        let mut vaesr_sweep = RateSweep::new("VAE-SR", kind.name());
        for &target in &NRMSE_TARGETS {
            let (mut orig, mut comp, mut sq, mut count) = (0usize, 0usize, 0.0f64, 0usize);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for block in &blocks {
                let bytes = vaesr.compress(block);
                let recon = vaesr.decompress(&bytes);
                let tau = PcaErrorBound::tau_for_nrmse(block, target);
                let (corrected, aux, _) = module.apply(block, &recon, tau);
                orig += block.numel() * 4;
                comp += bytes.len() + aux.len();
                for (a, b) in block.data().iter().zip(corrected.data()) {
                    sq += ((a - b) as f64).powi(2);
                }
                count += block.numel();
                lo = lo.min(block.min());
                hi = hi.max(block.max());
            }
            vaesr_sweep.push(
                orig as f64 / comp as f64,
                ((sq / count as f64).sqrt() as f32) / (hi - lo).max(1e-30),
            );
        }

        // SZ3-like baseline (relative point-wise bound sweep).
        let sz = SzCompressor::new();
        let mut sz_sweep = RateSweep::new("SZ3-like", kind.name());
        for &rel in &[5e-2f32, 2e-2, 1e-2, 5e-3, 2e-3] {
            let (mut orig, mut comp, mut sq, mut count) = (0usize, 0usize, 0.0f64, 0usize);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for block in &blocks {
                let range = block.max() - block.min();
                let (recon, size) = sz.roundtrip(block, rel * range);
                orig += block.numel() * 4;
                comp += size;
                for (a, b) in block.data().iter().zip(recon.data()) {
                    sq += ((a - b) as f64).powi(2);
                }
                count += block.numel();
                lo = lo.min(block.min());
                hi = hi.max(block.max());
            }
            sz_sweep.push(
                orig as f64 / comp as f64,
                ((sq / count as f64).sqrt() as f32) / (hi - lo).max(1e-30),
            );
        }

        let vs_sz = ours.improvement_over(&sz_sweep, MATCH_NRMSE);
        let vs_vaesr = ours.improvement_over(&vaesr_sweep, MATCH_NRMSE);
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.2}x")).unwrap_or_else(|| "n/a".into());
        println!("{:<10} {:>16} {:>16}", kind.name(), fmt(vs_sz), fmt(vs_vaesr));
        csv.push_str(&format!(
            "{},{},{}\n",
            kind.name(),
            vs_sz.map(|v| v.to_string()).unwrap_or_default(),
            vs_vaesr.map(|v| v.to_string()).unwrap_or_default()
        ));
    }
    write_result("headline_summary.csv", &csv);
}
