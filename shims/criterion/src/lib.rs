//! Minimal criterion-compatible benchmark harness for offline builds.
//!
//! Provides `Criterion`, `benchmark_group`, `Bencher::iter`, `black_box` and
//! the `criterion_group!`/`criterion_main!` macros.  Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and reports the
//! median wall-clock time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 30, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` and prints the median per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.to_string());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up sample (also sizes the iteration batch).
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    if bencher.iters > 0 {
        per_iter.push(bencher.elapsed / bencher.iters as u32);
    }
    for _ in 1..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            per_iter.push(bencher.elapsed / bencher.iters as u32);
        }
    }
    per_iter.sort_unstable();
    if per_iter.is_empty() {
        println!("{label:<50} (no iterations)");
        return;
    }
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{label:<50} median {:>12?}   [{:?} .. {:?}]   ({} samples)",
        median,
        lo,
        hi,
        per_iter.len()
    );
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One measured batch per sample keeps total runtime bounded even for
        // slow routines (the workloads here are milliseconds to seconds).
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
