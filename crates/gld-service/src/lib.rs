//! # gld-service
//!
//! The sharded compression service over the framed `GLDS` wire protocol —
//! the layer that turns the compression stack into long-lived shared
//! infrastructure serving many concurrent clients:
//!
//! * [`protocol`] — the framed wire protocol (magic + version + op + codec
//!   negotiation + `u64` length-prefixed bodies) with panic-free, typed
//!   decoders (fuzzed in `tests/protocol_fuzz.rs`); header byte 9 carries
//!   capability-and-echo feature bits (unknown bits ignored), bit 0
//!   negotiating the container v3 per-frame `gld-lz` stage — stage-blind
//!   clients transparently receive stage-free v2 responses;
//! * [`router`] — deterministic key-hash shard assignment with a
//!   round-robin override;
//! * [`server`] — the TCP server: a readiness-driven event loop front end
//!   (epoll over the in-repo shim) with pipelined keepalive connections,
//!   per-connection admission control (outstanding bound + optional token
//!   bucket → [`Status::RateLimited`]), per-shard worker threads behind
//!   bounded in-flight admission windows, compress responses streamed
//!   straight from `gld_core::compress_variable_to_writer`, graceful
//!   drain-then-join shutdown;
//! * [`client`] — the blocking client library the tests, bins, benches and
//!   examples speak through, plus [`PipelinedClient`] for many-outstanding
//!   request streams matched by request id;
//! * [`metrics`] — `StreamMetrics`-style service accounting (per-shard
//!   in-flight gauges and peaks) that the overload tests assert against,
//!   served over the wire by [`Op::Status`];
//! * [`resilient`] — the self-healing client: connect/request deadlines,
//!   jittered exponential backoff, automatic reconnect with full `Hello`
//!   re-negotiation, typed exhaustion;
//! * [`chaos`] — the fault-injecting TCP proxy the resilience tests and
//!   the CI chaos smoke job put between client and server.
//!
//! Fault injection: the whole service is instrumented with `GLD_FAILPOINTS`
//! failpoints (`service.read`, `service.write`, `shard.submit`, plus
//! `container.frame`/`container.destage` in `gld-core`) — zero-cost when
//! unset, see the `fail` shim crate.
//!
//! Binaries: `gld-serviced` (standalone server) and `gld-service-check`
//! (client smoke check used by CI's boot-the-binary job).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
mod eventloop;
pub mod metrics;
pub mod protocol;
pub mod resilient;
pub mod router;
pub mod server;

pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{ClientError, PipelinedClient, Reply, ServerInfo, ServiceClient};
pub use metrics::{ServiceMetricsSnapshot, ShardMetricsSnapshot};
pub use protocol::{Op, OpLatency, ProtocolError, Status, StatusResponse, StatusSummaries};
pub use resilient::{Backoff, ResilientClient, ResilientError, RetryPolicy};
pub use router::{ShardPolicy, ShardRouter};
pub use server::{CodecRegistry, RateLimit, Server, ServiceConfig};
