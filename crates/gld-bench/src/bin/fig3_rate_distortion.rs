//! Regenerates Figure 3 (a/b/c): compression-ratio vs NRMSE curves for the
//! proposed method, the learned baselines (VAE-SR, CDC-X, CDC-ε, GCD) and
//! the rule-based baselines (SZ3-like, ZFP-like) on the three synthetic
//! datasets.  Every learned method shares the same PCA error-bound
//! post-processing, exactly as in the paper's evaluation protocol (§4.1).

use gld_baselines::{ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_bench::{train_on, write_result};
use gld_core::{
    ErrorBoundConfig, LearnedBaseline, LearnedBaselineKind, PcaErrorBound, RateSweep,
};
use gld_datasets::blocks::temporal_windows;
use gld_datasets::DatasetKind;
use gld_tensor::stats::nrmse;
use gld_tensor::Tensor;

/// NRMSE targets swept for the learned methods.
const NRMSE_TARGETS: [f32; 4] = [2e-2, 1e-2, 5e-3, 2e-3];
/// Relative (range-scaled) point-wise bounds swept for the rule-based codecs.
const REL_BOUNDS: [f32; 4] = [5e-2, 2e-2, 1e-2, 5e-3];

fn learned_sweep(
    name: &str,
    dataset: &str,
    blocks: &[Tensor],
    compress: &dyn Fn(&Tensor) -> Vec<u8>,
    decompress: &dyn Fn(&[u8]) -> Tensor,
) -> RateSweep {
    let module = PcaErrorBound::new(ErrorBoundConfig::default());
    let mut sweep = RateSweep::new(name, dataset);
    for &target in &NRMSE_TARGETS {
        let mut orig_bytes = 0usize;
        let mut comp_bytes = 0usize;
        let mut sq = 0.0f64;
        let mut count = 0usize;
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for block in blocks {
            let bytes = compress(block);
            let recon = decompress(&bytes);
            let tau = PcaErrorBound::tau_for_nrmse(block, target);
            let (corrected, aux, _) = module.apply(block, &recon, tau);
            orig_bytes += block.numel() * 4;
            comp_bytes += bytes.len() + aux.len();
            for (a, b) in block.data().iter().zip(corrected.data()) {
                sq += ((a - b) as f64).powi(2);
            }
            count += block.numel();
            lo = lo.min(block.min());
            hi = hi.max(block.max());
        }
        let err = ((sq / count as f64).sqrt() as f32) / (hi - lo).max(1e-30);
        sweep.push(orig_bytes as f64 / comp_bytes as f64, err);
    }
    sweep
}

fn main() {
    let mut csv = String::from("dataset,method,compression_ratio,nrmse\n");
    for kind in DatasetKind::all() {
        println!("=== Figure 3 — {} ===", kind.name());
        let (compressor, dataset) = train_on(kind, 31 + kind as u64);
        let n = compressor.config().block_frames;
        let blocks: Vec<Tensor> = dataset
            .variables
            .iter()
            .flat_map(|v| temporal_windows(v, n).into_iter().map(|w| w.data))
            .collect();

        let mut sweeps: Vec<RateSweep> = Vec::new();

        // Ours: keyframe latents + latent diffusion + error bound.
        let mut ours = RateSweep::new("Ours", kind.name());
        for &target in &NRMSE_TARGETS {
            let mut orig = 0usize;
            let mut comp = 0usize;
            let mut sq = 0.0f64;
            let mut count = 0usize;
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for block in &blocks {
                let c = compressor.compress_block(block, Some(target));
                let recon = compressor.decompress_block(&c);
                orig += c.original_bytes();
                comp += c.total_bytes();
                for (a, b) in block.data().iter().zip(recon.data()) {
                    sq += ((a - b) as f64).powi(2);
                }
                count += block.numel();
                lo = lo.min(block.min());
                hi = hi.max(block.max());
            }
            let err = ((sq / count as f64).sqrt() as f32) / (hi - lo).max(1e-30);
            ours.push(orig as f64 / comp as f64, err);
        }
        sweeps.push(ours);

        // Learned baselines sharing the trained VAE.
        for bkind in LearnedBaselineKind::all() {
            let baseline = LearnedBaseline::new(bkind, compressor.vae(), None);
            sweeps.push(learned_sweep(
                bkind.name(),
                kind.name(),
                &blocks,
                &|b| baseline.compress(b),
                &|bytes| baseline.decompress(bytes),
            ));
        }

        // Rule-based baselines (point-wise error bound sweep).
        for (name, codec) in [
            ("SZ3-like", &SzCompressor::new() as &dyn ErrorBoundedCompressor),
            ("ZFP-like", &ZfpLikeCompressor::new() as &dyn ErrorBoundedCompressor),
        ] {
            let mut sweep = RateSweep::new(name, kind.name());
            for &rel in &REL_BOUNDS {
                let mut orig = 0usize;
                let mut comp = 0usize;
                let mut sq = 0.0f64;
                let mut count = 0usize;
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for block in &blocks {
                    let range = block.max() - block.min();
                    let (recon, size) = codec.roundtrip(block, rel * range);
                    orig += block.numel() * 4;
                    comp += size;
                    sq += (nrmse(block, &recon) as f64).powi(2) * block.numel() as f64;
                    count += block.numel();
                    lo = lo.min(block.min());
                    hi = hi.max(block.max());
                }
                let _ = (lo, hi);
                let err = (sq / count as f64).sqrt() as f32;
                sweep.push(orig as f64 / comp as f64, err);
            }
            sweeps.push(sweep);
        }

        // Report.
        println!("{:<10} {}", "method", "points (ratio @ NRMSE)");
        for sweep in &sweeps {
            let pts: Vec<String> = sweep
                .points
                .iter()
                .map(|p| format!("{:.0}x@{:.1e}", p.compression_ratio, p.nrmse))
                .collect();
            println!("{:<10} {}", sweep.method, pts.join("  "));
            for p in &sweep.points {
                csv.push_str(&format!(
                    "{},{},{:.3},{:.6}\n",
                    kind.name(),
                    sweep.method,
                    p.compression_ratio,
                    p.nrmse
                ));
            }
        }
        println!();
    }
    write_result("fig3_rate_distortion.csv", &csv);
    println!("Paper shape to compare against: learned methods dominate rule-based; Ours dominates per-frame learned baselines at matched NRMSE.");
}
