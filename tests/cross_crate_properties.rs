//! Property-based integration tests spanning several crates: whatever the
//! keyframe strategy, block geometry or error target, the pipeline's core
//! invariants must hold.

use gld_core::{ErrorBoundConfig, KeyframeStrategy, PcaErrorBound};
use gld_datasets::blocks::{block_to_nchw, nchw_to_block};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_diffusion::FramePartition;
use gld_tensor::stats::nrmse;
use gld_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn keyframe_partitions_are_always_valid(
        n in 4usize..32,
        interval in 2usize..8,
        pred_count in 1usize..8,
    ) {
        for strategy in [
            KeyframeStrategy::Interpolation { interval },
            KeyframeStrategy::Prediction { count: pred_count },
            KeyframeStrategy::Mixed { count: pred_count.max(2) },
        ] {
            let partition = strategy.partition(n);
            prop_assert_eq!(partition.total, n);
            prop_assert!(partition.num_generated() > 0);
            prop_assert!(partition.num_conditioning() > 0);
            let mut all: Vec<usize> = partition
                .conditioning
                .iter()
                .chain(partition.generated.iter())
                .copied()
                .collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn error_bound_module_always_meets_nrmse_targets(
        seed in 0u64..400,
        noise in 0.01f32..2.0,
        target_exp in -4i32..-1,
    ) {
        let mut rng = TensorRng::new(seed);
        let original = rng.randn(&[4, 8, 8]).scale(5.0);
        let recon = original.add(&rng.randn(&[4, 8, 8]).scale(noise));
        let target = 10f32.powi(target_exp);
        let module = PcaErrorBound::new(ErrorBoundConfig { chunk: 16 });
        let tau = PcaErrorBound::tau_for_nrmse(&original, target);
        let (corrected, aux, _) = module.apply(&original, &recon, tau);
        prop_assert!(nrmse(&original, &corrected) <= target * 1.01);
        let replay = module.apply_from_aux(&recon, &aux);
        prop_assert!(replay.sub(&corrected).abs().max() < 1e-3);
    }

    #[test]
    fn splice_then_partition_roundtrip(seed in 0u64..200, n in 3usize..10) {
        let mut rng = TensorRng::new(seed);
        let clean = rng.randn(&[n, 2, 4, 4]);
        let noisy = rng.randn(&[n, 2, 4, 4]);
        let strategy = KeyframeStrategy::Interpolation { interval: 3 };
        let partition: FramePartition = strategy.partition(n);
        let spliced = gld_diffusion::model::splice_frames(&noisy, &clean, &partition);
        // Conditioning frames come from `clean`, generated frames from `noisy`.
        for &c in &partition.conditioning {
            prop_assert_eq!(spliced.index_select(0, &[c]), clean.index_select(0, &[c]));
        }
        for &g in &partition.generated {
            prop_assert_eq!(spliced.index_select(0, &[g]), noisy.index_select(0, &[g]));
        }
    }

    #[test]
    fn block_layout_conversions_are_inverses(seed in 0u64..200, n in 1usize..6) {
        let mut rng = TensorRng::new(seed);
        let block = rng.randn(&[n, 8, 8]);
        prop_assert_eq!(nchw_to_block(&block_to_nchw(&block)), block);
    }
}

#[test]
fn normalization_metadata_preserves_extreme_dynamic_range() {
    // Values spanning many orders of magnitude (the E3SM regime) survive the
    // per-frame normalisation round trip used throughout the pipeline.
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(4, 8, 16, 16), 5);
    for variable in &ds.variables {
        let frames = &variable.frames;
        let mut frames_norm = Vec::new();
        let mut params = Vec::new();
        for t in 0..frames.dim(0) {
            let f = frames.slice_axis(0, t, t + 1);
            let (n, mean, range) = f.normalize_mean_range();
            frames_norm.push(n);
            params.push((mean, range));
        }
        let refs: Vec<&Tensor> = frames_norm.iter().collect();
        let stacked = Tensor::concat(&refs, 0);
        let mut rebuilt = Vec::new();
        for (t, &(mean, range)) in params.iter().enumerate() {
            rebuilt.push(
                stacked
                    .slice_axis(0, t, t + 1)
                    .denormalize_mean_range(mean, range),
            );
        }
        let refs: Vec<&Tensor> = rebuilt.iter().collect();
        let back = Tensor::concat(&refs, 0);
        let err = nrmse(frames, &back);
        assert!(
            err < 1e-6,
            "variable {} round-trip NRMSE {err}",
            variable.name
        );
    }
}
