//! Trainable parameters and parameter collections.
//!
//! A [`Parameter`] is a shared, mutable tensor plus an accumulated gradient.
//! Layers hold `Parameter`s; each forward pass binds them to leaf variables
//! on the current [`crate::tape::Tape`], and `backward` deposits gradients
//! back into the parameter, where the optimizer picks them up.

use gld_tensor::Tensor;
use parking_lot::RwLock;
use std::sync::Arc;

#[derive(Debug)]
struct ParameterInner {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A shared trainable tensor with an accumulated gradient.
///
/// Cloning a `Parameter` clones the *handle*; both clones refer to the same
/// underlying storage, which is how the optimizer and the layers stay in
/// sync.
#[derive(Clone, Debug)]
pub struct Parameter {
    inner: Arc<RwLock<ParameterInner>>,
}

impl Parameter {
    /// Creates a named parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter {
            inner: Arc::new(RwLock::new(ParameterInner {
                name: name.into(),
                value,
                grad,
            })),
        }
    }

    /// The parameter's name (used in diagnostics and serialization).
    pub fn name(&self) -> String {
        self.inner.read().name.clone()
    }

    /// A snapshot of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.read().value.clone()
    }

    /// A snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.read().grad.clone()
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.inner.read().value.numel()
    }

    /// Overwrites the value (used by the optimizer and by checkpoint loads).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.write();
        assert_eq!(
            inner.value.dims(),
            value.dims(),
            "parameter {} shape cannot change",
            inner.name
        );
        inner.value = value;
    }

    /// Adds `delta` into the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        let mut inner = self.inner.write();
        assert_eq!(
            inner.grad.dims(),
            delta.dims(),
            "gradient shape mismatch for parameter {}",
            inner.name
        );
        inner.grad.add_assign(delta);
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        let mut inner = self.inner.write();
        inner.grad = Tensor::zeros(inner.value.dims());
    }

    /// Applies an in-place update `value += update` (used by optimizers).
    pub fn apply_update(&self, update: &Tensor) {
        let mut inner = self.inner.write();
        inner.value.add_assign(update);
    }

    /// True when two handles refer to the same underlying parameter.
    pub fn same_as(&self, other: &Parameter) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// An ordered collection of parameters (a model's state).
#[derive(Clone, Debug, Default)]
pub struct ParameterSet {
    params: Vec<Parameter>,
}

impl ParameterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParameterSet { params: Vec::new() }
    }

    /// Adds a parameter (ignoring duplicates of the same handle).
    pub fn push(&mut self, p: Parameter) {
        if !self.params.iter().any(|q| q.same_as(&p)) {
            self.params.push(p);
        }
    }

    /// Adds every parameter from another set.
    pub fn extend(&mut self, other: &ParameterSet) {
        for p in &other.params {
            self.push(p.clone());
        }
    }

    /// Iterates over the parameters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Parameter> {
        self.params.iter()
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.numel()).sum()
    }

    /// Zeroes every gradient in the set.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global gradient L2 norm (useful for clipping and diagnostics).
    pub fn grad_norm(&self) -> f32 {
        let sq: f64 = self
            .params
            .iter()
            .map(|p| {
                let g = p.grad();
                g.data().iter().map(|&x| x as f64 * x as f64).sum::<f64>()
            })
            .sum();
        sq.sqrt() as f32
    }

    /// Clips every gradient so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                let clipped = p.grad().scale(scale);
                p.zero_grad();
                p.accumulate_grad(&clipped);
            }
        }
    }
}

impl FromIterator<Parameter> for ParameterSet {
    fn from_iter<T: IntoIterator<Item = Parameter>>(iter: T) -> Self {
        let mut set = ParameterSet::new();
        for p in iter {
            set.push(p);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_zero_grad() {
        let p = Parameter::new("w", Tensor::zeros(&[2, 2]));
        p.accumulate_grad(&Tensor::ones(&[2, 2]));
        p.accumulate_grad(&Tensor::ones(&[2, 2]));
        assert!(p.grad().data().iter().all(|&g| g == 2.0));
        p.zero_grad();
        assert!(p.grad().data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clones_share_storage() {
        let p = Parameter::new("w", Tensor::zeros(&[3]));
        let q = p.clone();
        q.apply_update(&Tensor::ones(&[3]));
        assert!(p.value().data().iter().all(|&v| v == 1.0));
        assert!(p.same_as(&q));
    }

    #[test]
    #[should_panic(expected = "shape cannot change")]
    fn set_value_rejects_shape_change() {
        let p = Parameter::new("w", Tensor::zeros(&[3]));
        p.set_value(Tensor::zeros(&[4]));
    }

    #[test]
    fn parameter_set_dedup_and_counts() {
        let a = Parameter::new("a", Tensor::zeros(&[2, 3]));
        let b = Parameter::new("b", Tensor::zeros(&[4]));
        let mut set = ParameterSet::new();
        set.push(a.clone());
        set.push(a.clone());
        set.push(b.clone());
        assert_eq!(set.len(), 2);
        assert_eq!(set.num_scalars(), 10);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let a = Parameter::new("a", Tensor::zeros(&[2]));
        a.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let set: ParameterSet = [a.clone()].into_iter().collect();
        assert!((set.grad_norm() - 5.0).abs() < 1e-6);
        set.clip_grad_norm(1.0);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        let g = a.grad();
        assert!((g.data()[1] / g.data()[0] - 4.0 / 3.0).abs() < 1e-5);
    }
}
