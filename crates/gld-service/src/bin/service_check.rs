//! `gld-service-check` — client-side smoke check against a live
//! `gld-serviced`, used by CI's boot-the-binary job.
//!
//! Connects (retrying while the server boots), negotiates, round-trips
//! variables through both rule-based codecs, verifies every byte against a
//! direct in-process `Codec` run, exercises an error path, then asks the
//! server to shut down.  Any mismatch or refusal exits non-zero.
//!
//! With `--pipelined` it instead exercises the pipelined client mode:
//! many keepalive connections each keep several requests outstanding,
//! replies are matched back by request id (out-of-order allowed), the
//! pipelined compress bytes are checked bit-identical to a blocking
//! compress of the same variable, and the `Status` op's per-shard
//! counters are asserted against the negotiated topology.
//!
//! With `--verify-metrics HOST:PORT` the check additionally scrapes the
//! server's `--metrics-addr` Prometheus endpoint and cross-checks the
//! exposition against the wire `Status` summaries: the required metric
//! families must be present and every per-op count/p50/p99 must agree
//! exactly with the trailer (both read the same cumulative histograms).
//!
//! ```text
//! gld-service-check [--pipelined] [--verify-metrics HOST:PORT] [HOST:PORT]
//!                   (default 127.0.0.1:7171)
//! ```

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_core::{Codec, CodecId, Container, ErrorTarget, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::{Backoff, ClientError, Op, Reply, ServiceClient, Status};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn connect_with_retry(addr: &str) -> ServiceClient {
    // The same jittered exponential backoff `ResilientClient` uses, seeded
    // per process so parallel checks against one booting server do not
    // busy-dial in lockstep.
    let mut backoff = Backoff::new(
        Duration::from_millis(50),
        Duration::from_secs(2),
        std::process::id() as u64,
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match ServiceClient::connect(addr) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                gld_obs::log_debug!("service-check", addr = addr, err = e; "waiting for server");
                backoff.sleep();
            }
            Err(e) => panic!("could not reach {addr} within 20s: {e}"),
        }
    }
}

/// Pipelined smoke check: 32 keepalive connections, each with a mixed
/// window of ping/compress/status/decompress submits matched back by
/// request id, verified bit-identical against one blocking compress.
fn pipelined_check(addr: &str) {
    let mut blocking = connect_with_retry(addr);
    let info = blocking
        .hello(&[CodecId::SzLike, CodecId::ZfpLike])
        .expect("hello negotiation");
    gld_obs::log_info!(
        "service-check",
        shards = info.shards,
        window = info.shard_window;
        "pipelined check: negotiated"
    );

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(2, 24, 16, 16), 71);
    let variable = &ds.variables[0];
    let reference = blocking
        .compress(&variable.name, variable, 8, None)
        .expect("blocking compress reference");
    let codec = SzCompressor::new();
    let local_blocks = codec
        .decompress_container(&Container::decode(&reference).expect("container decodes"))
        .expect("local decompress");

    const CONNS: usize = 32;
    for conn in 0..CONNS {
        let mut setup = connect_with_retry(addr);
        setup
            .hello(&[CodecId::SzLike, CodecId::ZfpLike])
            .expect("hello negotiation");
        let mut pipe = setup.into_pipelined();

        let mut expected = HashMap::new();
        expected.insert(pipe.submit_ping().expect("submit ping"), "ping");
        expected.insert(
            pipe.submit_compress(&variable.name, variable, 8, None)
                .expect("submit compress"),
            "compress",
        );
        expected.insert(pipe.submit_status().expect("submit status"), "status");
        expected.insert(
            pipe.submit_decompress(&variable.name, &reference)
                .expect("submit decompress"),
            "decompress",
        );
        expected.insert(pipe.submit_ping().expect("submit ping"), "ping");
        assert_eq!(pipe.outstanding(), 5);

        for (id, reply) in pipe.drain().expect("drain pipelined replies") {
            let kind = expected
                .remove(&id)
                .expect("reply id matches an outstanding submit");
            match (kind, reply) {
                ("ping", Reply::Pong) => {}
                ("compress", Reply::Compressed(bytes)) => assert_eq!(
                    bytes, reference,
                    "pipelined compress differs from blocking compress"
                ),
                ("status", Reply::ServerStatus(status)) => {
                    assert_eq!(
                        status.shards.len(),
                        info.shards as usize,
                        "Status shard count differs from hello topology"
                    );
                    assert!(status.connections_active >= 1, "we are connected");
                }
                ("decompress", Reply::Decompressed(blocks)) => {
                    assert_eq!(blocks.len(), local_blocks.len());
                    for (a, b) in blocks.iter().zip(&local_blocks) {
                        assert_eq!(a.data(), b.data(), "pipelined decompress differs");
                    }
                }
                (kind, other) => panic!("conn {conn}: {kind} answered with {other:?}"),
            }
        }
        assert!(expected.is_empty(), "every submit answered exactly once");
    }

    let status = blocking.status().expect("status op");
    let completed: u64 = status.shards.iter().map(|s| s.completed).sum();
    assert!(
        completed as usize >= CONNS,
        "per-shard completed counters should cover the pipelined compresses"
    );
    gld_obs::log_info!(
        "service-check",
        connections = CONNS,
        completed = completed;
        "pipelined connections OK"
    );

    blocking.shutdown_server().expect("shutdown request");
    gld_obs::log_info!("service-check", "pipelined service check OK");
}

/// One HTTP/1.0 GET against the `--metrics-addr` endpoint, returning the
/// exposition body (the same scrape CI performs with curl).
fn scrape_metrics(metrics_addr: &str) -> String {
    let mut stream = TcpStream::connect(metrics_addr).expect("connect metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    assert!(
        head.starts_with("HTTP/1.0 200"),
        "metrics endpoint refused the scrape: {head}"
    );
    body.to_string()
}

/// Scrapes the metrics endpoint and cross-checks it against the wire
/// `Status` summaries.  The status request is the only traffic between the
/// trailer build and the scrape, so every non-status op row must agree
/// exactly (the status op's own total lands in the histogram *after* its
/// summaries were built, so that one row lags by design).
fn verify_metrics_endpoint(client: &mut ServiceClient, metrics_addr: &str) {
    let status = client.status().expect("status with summaries");
    let summaries = status
        .summaries
        .expect("server echoes the negotiated summaries trailer");
    let body = scrape_metrics(metrics_addr);

    for family in [
        "glds_request_duration_ns",
        "glds_stage_duration_ns",
        "glds_connections_active",
        "glds_connections_opened_total",
        "glds_requests_completed_total",
        "glds_requests_rejected_total",
        "glds_requests_rate_limited_total",
        "glds_deadlines_exceeded_total",
        "glds_rejected_other_total",
        "glds_shard_in_flight",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} ")),
            "family {family} missing from the exposition"
        );
    }

    let mut rows_checked = 0u32;
    for row in &summaries.ops {
        let op = Op::from_u8(row.op).expect("summary rows carry valid ops");
        if op == Op::Status {
            continue;
        }
        let name = match op {
            Op::Hello => "hello",
            Op::Compress => "compress",
            Op::Decompress => "decompress",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
            Op::Status => unreachable!(),
        };
        let needle = format!("op=\"{name}\"");
        let count = gld_obs::registry::scrape_value(
            &body,
            "glds_request_duration_ns",
            "_count",
            &[&needle],
        )
        .unwrap_or_else(|| panic!("endpoint misses the {name} histogram"));
        assert_eq!(count as u64, row.count, "{name}: count disagrees");
        for (q, expected) in [("0.5", row.p50_ns), ("0.99", row.p99_ns)] {
            let got = gld_obs::registry::scrape_value(
                &body,
                "glds_request_duration_ns",
                "_quantile",
                &[&needle, &format!("q=\"{q}\"")],
            )
            .unwrap_or_else(|| panic!("endpoint misses the {name} q={q} gauge"));
            assert_eq!(got as u64, expected, "{name}: q={q} disagrees");
        }
        rows_checked += 1;
    }
    assert!(rows_checked > 0, "served ops produce summary rows");

    let value = |family| {
        gld_obs::registry::scrape_value(&body, family, "", &[])
            .unwrap_or_else(|| panic!("{family} missing"))
    };
    let rejected = value("glds_requests_rejected_total");
    let rate_limited = value("glds_requests_rate_limited_total");
    let deadlines = value("glds_deadlines_exceeded_total");
    let other = value("glds_rejected_other_total");
    assert_eq!(
        rejected,
        rate_limited + deadlines + other,
        "rejection roll-up must equal the sum of its disjoint causes"
    );
    assert_eq!(other as u64, summaries.rejected_other);

    gld_obs::log_info!(
        "service-check",
        ops = rows_checked,
        rejected = rejected;
        "metrics endpoint agrees with Status summaries"
    );
}

fn main() {
    let mut pipelined = false;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut verify_metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pipelined" => pipelined = true,
            "--verify-metrics" => {
                verify_metrics = Some(args.next().expect("--verify-metrics takes HOST:PORT"))
            }
            other => addr = other.to_string(),
        }
    }
    if pipelined {
        pipelined_check(&addr);
        return;
    }
    let mut client = connect_with_retry(&addr);

    let info = client
        .hello(&[CodecId::SzLike, CodecId::ZfpLike])
        .expect("hello negotiation");
    gld_obs::log_info!(
        "service-check",
        codec = format!("{:?}", info.codec),
        shards = info.shards,
        window = info.shard_window,
        queue_depth = info.queue_depth;
        "negotiated"
    );
    assert_eq!(info.codec, CodecId::SzLike, "first preference wins");
    assert!(
        info.profiles,
        "default hello advertises shared profiles and the server knows them"
    );
    client.ping().expect("ping");

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(2, 24, 16, 16), 71);
    let codecs: [(&str, &dyn Codec); 2] = [
        ("SZ3-like", &SzCompressor::new()),
        ("ZFP-like", &ZfpLikeCompressor::new()),
    ];
    for (name, codec) in codecs {
        for (variable, target) in ds
            .variables
            .iter()
            .zip([None, Some(ErrorTarget::Nrmse(1e-2))])
        {
            let remote = client
                .compress_as(codec.id(), &variable.name, variable, 8, target)
                .expect("remote compress");
            // The default hello negotiated shared profiles, so the session's
            // compress responses are v4 containers — the local oracle is the
            // profiled path, not the per-frame-staged `compress_variable`.
            let (local, stats, _) =
                codec.compress_variable_profiled(variable, 8, target, StreamConfig::default());
            assert_eq!(
                remote,
                local.encode(),
                "{name}: remote container differs from direct Codec output"
            );
            gld_obs::log_info!(
                "service-check",
                codec = name,
                variable = variable.name,
                blocks = stats.blocks,
                bytes = stats.compressed_bytes;
                "round trip bit-identical to local"
            );

            let blocks = client
                .decompress(&variable.name, &remote)
                .expect("remote decompress");
            let reference = codec
                .decompress_container(&Container::decode(&remote).expect("container decodes"))
                .expect("local decompress");
            assert_eq!(blocks.len(), reference.len());
            for (a, b) in blocks.iter().zip(&reference) {
                assert_eq!(a.dims(), b.dims(), "{name}: block dims differ");
                assert_eq!(a.data(), b.data(), "{name}: block data differs");
            }
        }
    }

    // Error path: a variable too short for one block must come back as a
    // typed refusal, not a hung or dead connection.
    let refusal = client.compress_as(CodecId::SzLike, "too-short", &ds.variables[0], 1_000, None);
    match refusal {
        Err(ClientError::Server { status, .. }) => assert_eq!(status, Status::Malformed),
        other => panic!("expected a Malformed refusal, got {other:?}"),
    }
    client
        .ping()
        .expect("connection still serves after a refusal");

    if let Some(metrics_addr) = &verify_metrics {
        verify_metrics_endpoint(&mut client, metrics_addr);
    }

    client.shutdown_server().expect("shutdown request");
    gld_obs::log_info!("service-check", "service check OK");
}
