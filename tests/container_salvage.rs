//! Salvage decode under exhaustive damage: every single-byte corruption of
//! a v4 container (header, profile table, frame framing, payloads, CRCs)
//! and every truncation point must leave `Container::decode_salvage` with
//! three guarantees — it never panics, every frame it reports recovered is
//! bit-identical to the original, and the loss report accounts for exactly
//! the frames that did not come back.
//!
//! The fixture mirrors the v4 shape the executor produces: frame 0 is
//! incompressible noise that doubles as the `DictMode::FirstBlock`
//! dictionary, frame 1 a near-copy that only stages under that dictionary
//! (so losing frame 0 must cascade into losing frame 1), and frame 2 a
//! compressible cold-staged trailer that must survive even a destroyed
//! profile table.

use gld_core::container::{stage_frame, stage_frame_profiled};
use gld_core::{CodecId, Container, DictMode, EntropyProfile, Salvage};
use gld_lz::{LzProfile, LzScratch};
use std::ops::Range;

/// Fixed container header length (magic + version + codec + flags + count).
const HEADER_LEN: usize = 12;

/// Pseudo-random bytes: incompressible alone, so only the first-block
/// dictionary can make near-copies of them stage.
fn noise(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

/// The three-frame v4 fixture: dictionary noise, profiled near-copy, cold
/// trailer.
fn sample() -> Container {
    let f0 = noise(0x5EED, 600);
    let mut f1 = f0.clone();
    f1[17] ^= 0x20;
    f1[303] ^= 0x01;
    let mut scratch = LzScratch::new();
    let lz = LzProfile::fit(&f0, &mut scratch);
    let profile = EntropyProfile {
        model: None,
        lz: Some(lz.clone()),
        dict_mode: DictMode::FirstBlock,
    };
    let mut c = Container::with_profiles(CodecId::SzLike, vec![profile]);
    // The dictionary frame is stored raw (noise does not stage cold), so it
    // must survive profile-table damage on its own.
    c.push_staged(f0.clone(), None);
    let s1 = stage_frame_profiled(&f1, &f0, &lz, &mut scratch);
    assert!(
        s1.is_some(),
        "the near-copy must stage under the dictionary"
    );
    c.push_profiled(f1, 1, s1);
    let trailer = vec![9u8; 40];
    let s2 = stage_frame(&trailer, &mut scratch);
    assert!(s2.is_some(), "the trailer must cold-stage");
    c.push_staged(trailer, s2);
    c
}

/// Byte extents of the fixture's wire regions, walked off the encoding
/// itself so the test keeps tracking the format.
struct Layout {
    /// The v4 profile table (stage byte + length-prefixed payload + CRC).
    table: Range<usize>,
    /// Each frame's full extent.
    frames: Vec<Range<usize>>,
    /// Each frame's 8-byte little-endian length prefix.
    length_prefixes: Vec<Range<usize>>,
}

fn layout(bytes: &[u8]) -> Layout {
    let read_len = |at: usize| {
        u64::from_le_bytes(bytes[at..at + 8].try_into().expect("length prefix")) as usize
    };
    // Table: stage u8, u64 payload length, payload, CRC-32.
    let mut pos = HEADER_LEN;
    let table_len = read_len(pos + 1);
    let table = pos..pos + 1 + 8 + table_len + 4;
    pos = table.end;
    // Frames: stage u8, profile u8, u64 payload length, payload, CRC-32.
    let mut frames = Vec::new();
    let mut length_prefixes = Vec::new();
    while pos < bytes.len() {
        let payload_len = read_len(pos + 2);
        length_prefixes.push(pos + 2..pos + 10);
        let end = pos + 2 + 8 + payload_len + 4;
        frames.push(pos..end);
        pos = end;
    }
    assert_eq!(pos, bytes.len(), "layout walk must consume the container");
    assert_eq!(frames.len(), 3, "fixture has three frames");
    Layout {
        table,
        frames,
        length_prefixes,
    }
}

fn lost_indices(salvage: &Salvage) -> Vec<usize> {
    salvage.report.lost.iter().map(|l| l.block).collect()
}

/// The guarantees that hold for *any* input: the `None` slots and the loss
/// report name exactly the same frames, and everything recovered is
/// bit-identical to the original frame at that index.
fn assert_invariants(salvage: &Salvage, originals: &[Vec<u8>], context: &str) {
    let none_slots: Vec<usize> = salvage
        .frames
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.is_none().then_some(i))
        .collect();
    assert_eq!(
        none_slots,
        lost_indices(salvage),
        "{context}: loss report must name exactly the unrecovered slots"
    );
    for (index, frame) in salvage.frames.iter().enumerate() {
        if let Some(frame) = frame {
            assert!(
                index < originals.len(),
                "{context}: recovered a frame index the original never had"
            );
            assert_eq!(
                frame, &originals[index],
                "{context}: recovered frame {index} differs from the original"
            );
        }
    }
}

#[test]
fn undamaged_container_salvages_completely() {
    let container = sample();
    let bytes = container.encode();
    let salvage = Container::decode_salvage(&bytes).expect("intact container");
    assert!(salvage.is_complete());
    assert_eq!(salvage.recovered(), 3);
    assert_eq!(salvage.report.declared_frames, 3);
    assert_eq!(salvage.report.version, 4);
    assert_eq!(salvage.report.codec, CodecId::SzLike);
    for (recovered, original) in salvage.frames.iter().zip(container.blocks()) {
        assert_eq!(recovered.as_ref().expect("complete"), original);
    }
}

/// Exhaustive single-byte corruption (`byte ^= 0xFF` at every offset), with
/// exact expected loss sets per damage region.
#[test]
fn every_single_byte_corruption_is_survived_and_accounted() {
    let container = sample();
    let bytes = container.encode();
    let originals = container.blocks();
    let layout = layout(&bytes);

    for offset in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[offset] ^= 0xFF;
        let context = format!("offset {offset} ^= 0xFF");

        if offset < 8 {
            // Magic, version, codec, flags: without a usable identity there
            // is nothing to hand the frames to — salvage must refuse.
            assert!(
                Container::decode_salvage(&damaged).is_err(),
                "{context}: a destroyed header identity must fail"
            );
            continue;
        }

        let salvage = Container::decode_salvage(&damaged)
            .unwrap_or_else(|e| panic!("{context}: salvage failed outright: {e}"));
        assert_invariants(&salvage, originals, &context);
        let lost = lost_indices(&salvage);

        if offset < HEADER_LEN {
            // Count damage: the three real frames still come back; only
            // phantom trailing indices may be reported lost.
            assert_eq!(
                salvage.recovered_indices(),
                vec![0, 1, 2],
                "{context}: count damage must not cost any real frame"
            );
            assert!(
                lost.iter().all(|&i| i >= 3),
                "{context}: only phantom indices may be lost"
            );
        } else if layout.table.contains(&offset) {
            // Table damage: the profiled frame is lost, the raw dictionary
            // frame and the cold-staged trailer survive.
            assert!(
                salvage.report.profile_table_error.is_some(),
                "{context}: table damage must be reported"
            );
            assert_eq!(
                salvage.recovered_indices(),
                vec![0, 2],
                "{context}: cold frames must survive table damage"
            );
            assert_eq!(
                lost,
                vec![1],
                "{context}: exactly the profiled frame is lost"
            );
        } else {
            let frame = layout
                .frames
                .iter()
                .position(|span| span.contains(&offset))
                .expect("offset belongs to some frame");
            // Losing the dictionary frame cascades into every frame whose
            // profile seeds its window from block 0.
            let expected = if frame == 0 { vec![0, 1] } else { vec![frame] };
            let in_length_prefix = layout.length_prefixes[frame].contains(&offset);
            if in_length_prefix {
                // Framing damage: resynchronisation is best-effort, but the
                // damaged frame itself is always lost and the frames before
                // it are already safely decoded.
                assert!(
                    lost.contains(&frame),
                    "{context}: the frame with damaged framing must be lost"
                );
                for before in 0..frame {
                    assert!(
                        salvage.frames[before].is_some(),
                        "{context}: frame {before} precedes the damage and must survive"
                    );
                }
            } else {
                assert_eq!(
                    lost, expected,
                    "{context}: exactly the damaged frame (plus dictionary \
                     dependants) must be lost"
                );
                assert_eq!(salvage.frames.len(), 3, "{context}");
            }
        }
    }
}

/// Every single-*bit* flip at every offset: no panic and the universal
/// invariants, whatever the damage semantics.
#[test]
fn every_single_bit_flip_upholds_the_invariants() {
    let container = sample();
    let bytes = container.encode();
    let originals = container.blocks();

    for offset in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut damaged = bytes.clone();
            damaged[offset] ^= 1 << bit;
            let context = format!("offset {offset} bit {bit}");
            if let Ok(salvage) = Container::decode_salvage(&damaged) {
                assert_invariants(&salvage, originals, &context);
            }
        }
    }
}

/// Every truncation point: frames wholly before the cut are recovered
/// (minus the dictionary cascade), everything else is reported lost.
#[test]
fn every_truncation_point_recovers_the_prefix() {
    let container = sample();
    let bytes = container.encode();
    let originals = container.blocks();
    let layout = layout(&bytes);

    for cut in 0..bytes.len() {
        let damaged = &bytes[..cut];
        let context = format!("truncated to {cut} bytes");
        if cut < HEADER_LEN {
            assert!(
                Container::decode_salvage(damaged).is_err(),
                "{context}: no header, no salvage"
            );
            continue;
        }
        let salvage = Container::decode_salvage(damaged)
            .unwrap_or_else(|e| panic!("{context}: salvage failed outright: {e}"));
        assert_invariants(&salvage, originals, &context);
        if cut >= layout.table.end {
            let expected: Vec<usize> = layout
                .frames
                .iter()
                .enumerate()
                .filter_map(|(i, span)| (span.end <= cut).then_some(i))
                .collect();
            assert_eq!(
                salvage.recovered_indices(),
                expected,
                "{context}: exactly the frames before the cut survive"
            );
        }
    }
}

/// Multi-site damage: one corrupted byte in *every* frame at once must
/// still not panic, and the raw dictionary frame's loss must be typed.
#[test]
fn simultaneous_damage_in_every_frame_loses_everything_gracefully() {
    let container = sample();
    let bytes = container.encode();
    let layout = layout(&bytes);
    let mut damaged = bytes.clone();
    for span in &layout.frames {
        // Mid-payload, clear of the framing bytes.
        damaged[span.start + 12] ^= 0xFF;
    }
    let salvage = Container::decode_salvage(&damaged).expect("header is intact");
    assert_invariants(&salvage, container.blocks(), "every frame damaged");
    assert_eq!(salvage.recovered(), 0);
    assert_eq!(lost_indices(&salvage), vec![0, 1, 2]);
}

/// v3 (per-frame stage, no profile table): single-byte corruption in one
/// frame loses exactly that frame — no dictionary cascade exists.
#[test]
fn v3_salvage_loses_only_the_damaged_frame() {
    let mut c = Container::new(CodecId::ZfpLike);
    for seed in 0..4u64 {
        c.push(noise(seed * 7 + 1, 120));
    }
    let bytes = c.encode_v3();
    // Frame 1's payload: header (12) + frame 0 (1 stage + 8 len + 120 + 4
    // crc) + a few bytes into frame 1's payload.
    let offset = HEADER_LEN + (1 + 8 + 120 + 4) + 20;
    let mut damaged = bytes.clone();
    damaged[offset] ^= 0xFF;
    let salvage = Container::decode_salvage(&damaged).expect("header is intact");
    assert_invariants(&salvage, c.blocks(), "v3 frame damage");
    assert_eq!(lost_indices(&salvage), vec![1]);
    assert_eq!(salvage.recovered_indices(), vec![0, 2, 3]);
    assert_eq!(salvage.report.version, 3);
    assert!(salvage.report.profile_table_error.is_none());
}
