//! The sharded compression server.
//!
//! A long-running TCP server speaking the framed `GLDS` protocol
//! (`crate::protocol`).  The front end is a single readiness-driven event
//! loop (`crate::eventloop`, over the in-repo `epoll` shim): it accepts
//! connections, assembles frames incrementally off non-blocking sockets,
//! answers protocol-level ops (`Ping`, `Hello`, `Status`, `Shutdown`)
//! inline, and routes codec work — by deterministic key hash or round-robin
//! (`crate::router`) — onto one of a fixed set of **shards**.  Each shard is
//! a worker thread draining a bounded admission window: a request is only
//! admitted while the shard has fewer than `shard_window` requests in flight
//! (admitted but not yet completed), so a congested shard queues *its own*
//! submitters' requests while every other shard keeps flowing.  All shards
//! share the one persistent `rayon` pool underneath: compress requests run
//! the bounded-memory streaming executor (`gld_core::executor`) whose
//! collector helps from the shard thread, so no shard can be starved by
//! another's pool usage.
//!
//! Connections are kept alive and **pipelined**: a client may have up to
//! `max_outstanding` codec requests unanswered on one connection, responses
//! are written as their shards finish — out of order, matched by request
//! id — and an optional per-connection token bucket refuses excess codec
//! work with [`Status::RateLimited`].
//!
//! Compress responses are `GLDC` containers streamed straight from
//! [`gld_core::compress_variable_to_writer`] into the response body (capped
//! by `max_body`; an over-limit container aborts mid-stream and the
//! diagnostic reports how many frames were emitted).  Graceful shutdown —
//! [`Server::shutdown`], or a wire [`Op::Shutdown`] — stops accepting,
//! refuses unadmitted requests, lets every admitted request finish and its
//! response flush, then joins every thread the server spawned.

use crate::eventloop::{EventLoop, WAKER_TOKEN};
use crate::metrics::{ServiceMetrics, ServiceMetricsSnapshot};
use crate::protocol::{self, FrameHeader, Op, Status, EXT_CONTAINER_STAGE, EXT_SHARED_PROFILES};
use crate::router::{ShardPolicy, ShardRouter};
use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_core::container::HEADER_LEN as CONTAINER_HEADER_LEN;
use gld_core::{
    compress_variable_to_writer_fmt, Codec, CodecId, Container, ContainerFormat, StreamConfig,
    StreamMetrics,
};
use gld_datasets::Variable;
use gld_tensor::Tensor;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Per-connection token-bucket admission budget for codec work (compress
/// and decompress; `Ping`/`Hello`/`Status` are never rate limited).
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Bucket capacity: the largest burst admitted at once.
    pub capacity: u32,
    /// Sustained admissions per second once the burst is spent.
    pub refill_per_sec: f64,
}

/// Server tuning.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of shards (per-shard worker threads).  Clamped to at least 1.
    pub shards: usize,
    /// Maximum requests admitted per shard at once (queued or executing,
    /// completion not yet processed).  Clamped to at least 1.
    pub shard_window: usize,
    /// Streaming-executor tuning for compress requests.
    pub stream: StreamConfig,
    /// Shard-assignment policy.
    pub policy: ShardPolicy,
    /// Maximum request *and* response body length in bytes (under the
    /// protocol's 1 GiB hard cap).
    pub max_body: u64,
    /// The event loop's idle tick: how often reaping, rate-limit refill and
    /// the shutdown flag are checked when no fd is ready.
    pub poll_interval: Duration,
    /// A connection whose peer accepts no response bytes for this long is
    /// reaped (its admitted work still completes and releases its window
    /// slots); also the drain deadline for flushing final responses.
    pub write_timeout: Duration,
    /// Maximum codec requests one connection may have unanswered before the
    /// server stops reading from it — the pipelining depth.  Clamped to at
    /// least 1.
    pub max_outstanding: usize,
    /// Optional per-connection token bucket on codec-work admissions;
    /// `None` (the default) admits everything the windows accept.
    pub rate_limit: Option<RateLimit>,
    /// A connection with no inbound traffic for this long is reaped at the
    /// idle tick (`None`, the default, keeps silent keepalives forever).
    /// Connections with admitted work still in flight are never idle-reaped.
    pub idle_timeout: Option<Duration>,
    /// Per-op execution deadline, measured from the moment the request
    /// frame is parsed.  A request that has not *started* executing by its
    /// deadline is answered with `Status::DeadlineExceeded` instead of
    /// being run; work already on a shard completes normally (jobs are not
    /// interruptible).  `None` (the default) never expires requests.
    pub op_deadline: Option<Duration>,
    /// Address for the Prometheus text-exposition metrics endpoint
    /// (`127.0.0.1:0` picks an ephemeral port; see
    /// [`Server::metrics_addr`]).  `None` (the default) serves no endpoint.
    pub metrics_addr: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            shard_window: 4,
            stream: StreamConfig::default(),
            policy: ShardPolicy::HashKey,
            max_body: 256 << 20,
            poll_interval: Duration::from_millis(25),
            write_timeout: Duration::from_secs(30),
            max_outstanding: 32,
            rate_limit: None,
            idle_timeout: None,
            op_deadline: None,
            metrics_addr: None,
        }
    }
}

/// The set of codecs a server instance is willing to run, keyed by
/// [`CodecId`].  Registration order is irrelevant — negotiation follows the
/// *client's* preference order.
#[derive(Clone, Default)]
pub struct CodecRegistry {
    codecs: Vec<Arc<dyn Codec + Send + Sync>>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CodecRegistry::default()
    }

    /// The rule-based default: SZ3-like and ZFP-like (deterministic, fast,
    /// training-free — what the standalone `gld-serviced` binary runs).
    pub fn rule_based() -> Self {
        let mut registry = CodecRegistry::new();
        registry.register(Arc::new(SzCompressor::new()));
        registry.register(Arc::new(ZfpLikeCompressor::new()));
        registry
    }

    /// Registers `codec`, replacing any previous codec with the same id.
    pub fn register(&mut self, codec: Arc<dyn Codec + Send + Sync>) {
        let id = codec.id();
        self.codecs.retain(|c| c.id() != id);
        self.codecs.push(codec);
    }

    /// Looks a codec up by id.
    pub fn get(&self, id: CodecId) -> Option<Arc<dyn Codec + Send + Sync>> {
        self.codecs.iter().find(|c| c.id() == id).cloned()
    }

    /// Registered codec ids.
    pub fn ids(&self) -> Vec<CodecId> {
        self.codecs.iter().map(|c| c.id()).collect()
    }

    /// Picks the first of the client's proposals (raw id bytes, preference
    /// order) that is registered here — the `Hello` negotiation rule.
    pub fn negotiate(&self, proposals: &[u8]) -> Option<CodecId> {
        proposals
            .iter()
            .filter_map(|&byte| CodecId::from_u8(byte).ok())
            .find(|&id| self.get(id).is_some())
    }
}

/// A codec job prepared by the event loop, executed on a shard worker.
pub(crate) type ShardJob = Box<dyn FnOnce() -> ShardResult + Send + 'static>;

/// A wrapped job as the shard queue stores it (result delivery included).
type WorkItem = Box<dyn FnOnce() + Send + 'static>;

/// What a shard job hands back to the event loop.
pub(crate) struct ShardResult {
    pub(crate) status: Status,
    pub(crate) codec: u8,
    pub(crate) body: Vec<u8>,
    pub(crate) stream: Option<StreamMetrics>,
    pub(crate) blocks: usize,
}

/// A finished shard job on its way back to the event loop.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) shard: usize,
    pub(crate) request_id: u64,
    pub(crate) op: Op,
    pub(crate) result: ShardResult,
    /// The request's frame-start timestamp ([`gld_obs::now_ns`]).
    pub(crate) t0_ns: u64,
    /// When the loop admitted the request to its shard — the `execute`
    /// stage measures from here to response enqueue.
    pub(crate) admit_ns: u64,
}

/// Negotiated session state for one connection (set by `Hello`).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Session {
    /// Codec chosen in `Hello`, used when a request's codec byte is 0.
    pub(crate) codec: Option<CodecId>,
    /// Container v3 per-frame stage negotiated.
    pub(crate) stage: bool,
    /// Container v4 shared profiles negotiated (wins over `stage`).
    pub(crate) profiles: bool,
}

/// Job queue for one shard.  Admission control lives in the event loop (the
/// only submitter), so this is just a condvar-parked work queue.
pub(crate) struct ShardQueue {
    state: Mutex<ShardQueueState>,
    work: Condvar,
}

struct ShardQueueState {
    jobs: VecDeque<WorkItem>,
    stop: bool,
}

impl ShardQueue {
    fn new() -> Self {
        ShardQueue {
            state: Mutex::new(ShardQueueState {
                jobs: VecDeque::new(),
                stop: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Hands an admitted job to the shard worker.
    pub(crate) fn push(&self, job: WorkItem) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.jobs.push_back(job);
        drop(state);
        self.work.notify_one();
    }

    /// Worker side: next job, or `None` once stopped *and* drained.
    fn next_job(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.stop {
                return None;
            }
            state = self.work.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn stop(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.stop = true;
        drop(state);
        self.work.notify_all();
    }
}

pub(crate) struct ServerShared {
    pub(crate) config: ServiceConfig,
    pub(crate) registry: CodecRegistry,
    pub(crate) router: ShardRouter,
    pub(crate) metrics: ServiceMetrics,
    pub(crate) shards: Vec<ShardQueue>,
    pub(crate) waker: epoll::Waker,
    completions: Mutex<Vec<Completion>>,
    addr: SocketAddr,
    shutdown: AtomicBool,
    shutdown_cv: (Mutex<bool>, Condvar),
}

impl ServerShared {
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Idempotently starts the graceful-shutdown sequence: flag the event
    /// loop (which stops accepting and drains) and wake everything waiting.
    pub(crate) fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the event loop out of its poll.
        let _ = self.waker.notify();
        // Wake `Server::wait`.
        let (flag, cv) = &self.shutdown_cv;
        *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }

    /// Worker side: queue a finished job's result and wake the loop.
    pub(crate) fn push_completion(&self, completion: Completion) {
        let mut completions = self.completions.lock().unwrap_or_else(|e| e.into_inner());
        completions.push(completion);
        drop(completions);
        let _ = self.waker.notify();
    }

    /// Loop side: take every queued completion.
    pub(crate) fn take_completions(&self) -> Vec<Completion> {
        let mut completions = self.completions.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *completions)
    }
}

/// A running sharded compression server.
///
/// Dropping the handle performs a graceful shutdown; call
/// [`Server::shutdown`] to do it explicitly or [`Server::wait`] to serve
/// until a wire [`Op::Shutdown`] arrives.
pub struct Server {
    shared: Arc<ServerShared>,
    event_loop: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    metrics_endpoint: Option<gld_obs::http::MetricsServer>,
}

impl Server {
    /// Binds, spawns the shard workers and the event loop, and returns the
    /// running server.
    pub fn start(config: ServiceConfig, registry: CodecRegistry) -> std::io::Result<Server> {
        assert!(!registry.codecs.is_empty(), "registry has no codecs");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shards = config.shards.max(1);
        let poller = epoll::Poller::new()?;
        let waker = epoll::Waker::new(&poller, WAKER_TOKEN)?;
        let shared = Arc::new(ServerShared {
            router: ShardRouter::new(shards, config.policy),
            metrics: ServiceMetrics::new(shards),
            shards: (0..shards).map(|_| ShardQueue::new()).collect(),
            waker,
            completions: Mutex::new(Vec::new()),
            addr,
            shutdown: AtomicBool::new(false),
            shutdown_cv: (Mutex::new(false), Condvar::new()),
            config,
            registry,
        });
        let workers = (0..shards)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gld-service-shard-{index}"))
                    .spawn(move || shard_worker(&shared, index))
                    .expect("spawn shard worker")
            })
            .collect();
        let event_loop = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("gld-service-loop".into())
                .spawn(move || EventLoop::new(shared, poller, listener).run())
                .expect("spawn event loop")
        };
        let metrics_endpoint = match shared.config.metrics_addr.clone() {
            Some(metrics_addr) => {
                let render_shared = Arc::clone(&shared);
                let renderer: gld_obs::http::Renderer =
                    Arc::new(move || render_metrics(&render_shared));
                Some(gld_obs::http::serve(metrics_addr.as_str(), renderer)?)
            }
            None => None,
        };
        gld_obs::log_info!(
            "server",
            addr = addr,
            shards = shards;
            "serving"
        );
        Ok(Server {
            shared,
            event_loop: Some(event_loop),
            workers,
            metrics_endpoint,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The metrics endpoint's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_endpoint
            .as_ref()
            .map(gld_obs::http::MetricsServer::local_addr)
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain every admitted request
    /// (responses are written), then join every thread.
    pub fn shutdown(mut self) -> ServiceMetricsSnapshot {
        self.shared.trigger_shutdown();
        self.join_all();
        self.shared.metrics.snapshot()
    }

    /// Serves until a wire [`Op::Shutdown`] request arrives, then drains and
    /// joins exactly like [`Server::shutdown`].
    pub fn wait(mut self) -> ServiceMetricsSnapshot {
        {
            let (flag, cv) = &self.shared.shutdown_cv;
            let mut done = flag.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.join_all();
        self.shared.metrics.snapshot()
    }

    fn join_all(&mut self) {
        // The event loop first: it owns the drain (refuse new work, complete
        // admitted work, flush responses, close connections) and exits only
        // when the drain is done.
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        // Shards last: every admitted job has completed by now, so stopping
        // is an empty-queue no-op.
        for shard in &self.shared.shards {
            shard.stop();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(endpoint) = self.metrics_endpoint.take() {
            endpoint.stop();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.event_loop.is_some() {
            self.shared.trigger_shutdown();
            self.join_all();
        }
    }
}

fn shard_worker(shared: &Arc<ServerShared>, index: usize) {
    while let Some(job) = shared.shards[index].next_job() {
        job();
    }
}

/// One scrape of the metrics endpoint: the process-global registry (latency
/// histograms and their derived quantiles) plus the service counters and
/// gauges, all in Prometheus text exposition format.  The service counters
/// are staged through a scratch registry so the renderer — grouping,
/// sorting, `# TYPE` lines — is the one the global families use.
fn render_metrics(shared: &ServerShared) -> String {
    let snapshot = shared.metrics.snapshot();
    let scratch = gld_obs::Registry::new();
    scratch
        .gauge("glds_connections_active", &[])
        .set(snapshot.connections_active as i64);
    for (family, value) in [
        ("glds_connections_opened_total", snapshot.connections_opened),
        ("glds_requests_completed_total", snapshot.completed()),
        ("glds_requests_rejected_total", snapshot.requests_rejected),
        (
            "glds_requests_rate_limited_total",
            snapshot.requests_rate_limited,
        ),
        ("glds_deadlines_exceeded_total", snapshot.deadlines_exceeded),
        ("glds_rejected_other_total", snapshot.rejected_other),
        (
            "glds_connections_reaped_idle_total",
            snapshot.connections_reaped_idle,
        ),
        ("glds_blocks_total", snapshot.blocks()),
    ] {
        scratch.counter(family, &[]).add(value as u64);
    }
    scratch
        .counter("glds_faults_injected_total", &[])
        .add(fail::total_hits());
    for (index, shard) in snapshot.shards.iter().enumerate() {
        let shard_label = index.to_string();
        let labels: [(&str, &str); 1] = [("shard", shard_label.as_str())];
        scratch
            .gauge("glds_shard_in_flight", &labels)
            .set(shard.in_flight as i64);
        for (family, value) in [
            ("glds_shard_admitted_total", shard.admitted),
            ("glds_shard_completed_total", shard.completed),
            ("glds_shard_bytes_in_total", shard.bytes_in),
            ("glds_shard_bytes_out_total", shard.bytes_out),
        ] {
            scratch.counter(family, &labels).add(value as u64);
        }
    }
    let mut out = gld_obs::registry::global().render();
    out.push_str(&scratch.render());
    out
}

/// Outcome of preparing a codec request on the event loop: refused with a
/// typed status, or a job ready for its shard's admission window.
pub(crate) enum Prepared {
    Refuse { status: Status, message: String },
    Job { shard: usize, job: ShardJob },
}

impl Prepared {
    fn refuse(status: Status, message: impl Into<String>) -> Self {
        Prepared::Refuse {
            status,
            message: message.into(),
        }
    }
}

/// Runs `Hello` negotiation: picks the codec, mutates the session (codec +
/// feature bits), and returns the ready-to-send response frame parts.
pub(crate) fn negotiate_hello(
    shared: &ServerShared,
    header: &FrameHeader,
    body: &[u8],
    session: &mut Session,
) -> Result<(FrameHeader, Vec<u8>), (Status, String)> {
    let request = protocol::HelloRequest::decode_body(body)
        .map_err(|e| (protocol::status_for(&e), e.to_string()))?;
    let Some(chosen) = shared.registry.negotiate(&request.proposals) else {
        return Err((
            Status::NoCommonCodec,
            "none of the proposed codecs is registered on this server".into(),
        ));
    };
    session.codec = Some(chosen);
    // Capability-and-echo: a feature is on exactly when the client
    // advertised it, and the echoed bit tells the client so.
    session.stage = header.ext & EXT_CONTAINER_STAGE != 0;
    session.profiles = header.ext & EXT_SHARED_PROFILES != 0;
    let info = protocol::HelloResponse {
        shards: shared.router.shards() as u32,
        shard_window: shared.config.shard_window.max(1) as u32,
        queue_depth: shared.config.stream.queue_depth.max(1) as u32,
    };
    let body = info.encode_body();
    let mut echo = 0u8;
    if session.stage {
        echo |= EXT_CONTAINER_STAGE;
    }
    if session.profiles {
        echo |= EXT_SHARED_PROFILES;
    }
    let response = FrameHeader::response(
        Op::Hello,
        chosen as u8,
        Status::Ok,
        header.request_id,
        body.len() as u64,
    )
    .with_ext(echo);
    Ok((response, body))
}

/// Resolves the codec for a request: an explicit header byte wins, else the
/// session default from `Hello`.
fn resolve_codec(
    shared: &ServerShared,
    header_codec: u8,
    session_codec: Option<CodecId>,
) -> Result<Arc<dyn Codec + Send + Sync>, (Status, String)> {
    let id = if header_codec != 0 {
        CodecId::from_u8(header_codec).map_err(|_| {
            (
                Status::UnknownCodec,
                format!("unknown codec id {header_codec}"),
            )
        })?
    } else {
        session_codec.ok_or((
            Status::UnknownCodec,
            "no codec: set the header codec byte or negotiate one with Hello".to_string(),
        ))?
    };
    shared.registry.get(id).ok_or((
        Status::UnknownCodec,
        format!("codec {id:?} is not registered"),
    ))
}

/// A `Vec` sink that refuses to grow past `limit` — the response-body cap
/// enforced *during* container streaming, so an over-limit compress aborts
/// early instead of buffering without bound.
struct LimitedSink {
    buf: Vec<u8>,
    limit: usize,
}

impl Write for LimitedSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.buf.len() + data.len() > self.limit {
            return Err(std::io::Error::other(format!(
                "response body limit of {} bytes exceeded",
                self.limit
            )));
        }
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "codec panicked".to_string()
    }
}

/// Validates a compress request and builds its shard job.  Runs on the
/// event loop — everything here is decode + cheap checks; the codec work is
/// inside the returned closure.
pub(crate) fn prepare_compress(
    shared: &ServerShared,
    header: &FrameHeader,
    body: &[u8],
    session: &Session,
) -> Prepared {
    let request = match protocol::CompressRequest::decode_body(body) {
        Ok(r) => r,
        Err(e) => return Prepared::refuse(protocol::status_for(&e), e.to_string()),
    };
    let codec = match resolve_codec(shared, header.codec, session.codec) {
        Ok(codec) => codec,
        Err((status, message)) => return Prepared::refuse(status, message),
    };
    let [t, h, w] = request.dims;
    if (t as usize) < request.block_frames as usize {
        // `checked_windows` panics on a zero-window variable; the server
        // must refuse it as a typed error instead.
        return Prepared::refuse(
            Status::Malformed,
            format!(
                "variable has {t} timesteps, too few for one {}-frame block",
                request.block_frames
            ),
        );
    }
    let shard = shared.router.route(&request.key);
    let variable = Variable::new(
        request.key,
        Tensor::from_vec(request.data, &[t as usize, h as usize, w as usize]),
    );
    let block_frames = request.block_frames as usize;
    let target = request.target;
    let stream_config = shared.config.stream;
    let limit = shared.config.max_body as usize;
    let codec_byte = codec.id() as u8;
    // Profile-negotiated sessions get the v4 (shared coding profile)
    // container, stage-negotiated sessions the v3 (per-frame gld-lz stage)
    // one; everyone else gets the stage-free v2 stream their decoder
    // predates the stage for.
    let format = if session.profiles {
        ContainerFormat::V4
    } else if session.stage {
        ContainerFormat::V3
    } else {
        ContainerFormat::V2
    };

    let job: ShardJob = Box::new(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            compress_variable_to_writer_fmt(
                codec.as_ref(),
                &variable,
                block_frames,
                target,
                stream_config,
                format,
                LimitedSink {
                    buf: Vec::new(),
                    limit,
                },
            )
        }));
        match outcome {
            Ok(Ok((sink, _stats, metrics))) => ShardResult {
                status: Status::Ok,
                codec: codec_byte,
                body: sink.buf,
                stream: Some(metrics),
                blocks: 0,
            },
            Ok(Err(e)) => ShardResult {
                // The partial-write diagnostic: how far the container got
                // before the sink refused (`StreamWriteError::frames_emitted`).
                status: Status::FrameTooLarge,
                codec: codec_byte,
                body: e.to_string().into_bytes(),
                stream: None,
                blocks: e.frames_emitted,
            },
            Err(payload) => ShardResult {
                status: Status::Internal,
                codec: codec_byte,
                body: panic_message(payload.as_ref()).into_bytes(),
                stream: None,
                blocks: 0,
            },
        }
    });
    Prepared::Job { shard, job }
}

/// Validates a decompress request and builds its shard job.  The cheap
/// pre-admission checks (length, codec byte) run here; the full CRC-checked
/// container decode runs on the shard.
pub(crate) fn prepare_decompress(shared: &ServerShared, body: &[u8]) -> Prepared {
    let request = match protocol::DecompressRequest::decode_body(body) {
        Ok(r) => r,
        Err(e) => return Prepared::refuse(protocol::status_for(&e), e.to_string()),
    };
    if request.container.len() < CONTAINER_HEADER_LEN {
        return Prepared::refuse(
            Status::BadContainer,
            "container shorter than its fixed header",
        );
    }
    let codec = match CodecId::from_u8(request.container[6])
        .ok()
        .and_then(|id| shared.registry.get(id))
    {
        Some(codec) => codec,
        None => {
            return Prepared::refuse(
                Status::UnknownCodec,
                format!(
                    "container codec id {} is not registered",
                    request.container[6]
                ),
            );
        }
    };
    let shard = shared.router.route(&request.key);
    let codec_byte = codec.id() as u8;
    let container_bytes = request.container;
    let limit = shared.config.max_body as usize;

    let job: ShardJob = Box::new(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let container = Container::decode(&container_bytes)
                .map_err(|e| (Status::BadContainer, e.to_string()))?;
            let blocks = codec
                .decompress_container(&container)
                .map_err(|e| (Status::BadContainer, e.to_string()))?;
            let body = protocol::encode_blocks_body(&blocks);
            if body.len() > limit {
                return Err((
                    Status::FrameTooLarge,
                    format!(
                        "decompressed body of {} bytes exceeds the {limit}-byte limit",
                        body.len()
                    ),
                ));
            }
            Ok((body, blocks.len()))
        }));
        match outcome {
            Ok(Ok((body, blocks))) => ShardResult {
                status: Status::Ok,
                codec: codec_byte,
                body,
                stream: None,
                blocks,
            },
            Ok(Err((status, message))) => ShardResult {
                status,
                codec: codec_byte,
                body: message.into_bytes(),
                stream: None,
                blocks: 0,
            },
            Err(payload) => ShardResult {
                status: Status::Internal,
                codec: codec_byte,
                body: panic_message(payload.as_ref()).into_bytes(),
                stream: None,
                blocks: 0,
            },
        }
    });
    Prepared::Job { shard, job }
}
