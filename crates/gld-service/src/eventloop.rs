//! The readiness-driven connection front end.
//!
//! One loop thread owns an [`epoll::Poller`], the listening socket, and every
//! connection's state machine; shard workers stay exactly as they were —
//! codec work never runs here.  The division of labour:
//!
//! * **Loop thread** (this module): accept, non-blocking reads into a
//!   [`StreamParser`](crate::protocol::StreamParser) per connection, request
//!   admission (per-connection outstanding bound, optional token-bucket rate
//!   limit, per-shard windows), inline ops (`Ping`, `Hello`, `Status`,
//!   `Shutdown`), response serialisation into per-connection write buffers,
//!   non-blocking flushes, connection reaping, graceful drain.
//! * **Shard workers** (`server.rs`): run admitted compress/decompress jobs
//!   and push a completion + waker notification back to the loop.
//!
//! Pipelining falls out of the design: every parsed request carries its own
//! id, responses are enqueued the moment their work completes, and nothing
//! forces completion order across shards — so responses go out **out of
//! order** and clients match on the echoed id.
//!
//! Backpressure is per connection.  A connection stops being *read* — its
//! epoll read interest is dropped, so a level-triggered poller stays quiet —
//! while it has `max_outstanding` codec requests unanswered or its write
//! buffer is over the backlog threshold; every other connection keeps
//! flowing.  A peer that stops draining its responses is reaped after
//! `write_timeout` without progress; a half-closed peer (read side EOF) is
//! served its remaining responses, then reaped.

use crate::protocol::{
    self, FrameHeader, Op, RawFrameHeader, Status, StatusResponse, StreamEvent, StreamParser,
};
use crate::server::{
    prepare_compress, prepare_decompress, Completion, Prepared, ServerShared, Session, ShardJob,
};
use epoll::{Event, Interest, Poller};
use gld_obs::{now_ns, registry, span, Histogram};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

/// Poller token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Poller token of the cross-thread waker.
pub(crate) const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection (tokens are never reused).
const FIRST_CONN_TOKEN: u64 = 2;

/// Write-buffer backlog (bytes unflushed) above which a connection's reads
/// pause until the peer drains responses.
const READ_PAUSE_BACKLOG: usize = 1 << 20;

/// Label values for the per-op request histograms, indexed by `Op as u8 - 1`.
const OP_NAMES: [&str; 6] = [
    "hello",
    "compress",
    "decompress",
    "ping",
    "shutdown",
    "status",
];

/// The lowercase label value for `op` in metric families.
pub(crate) fn op_name(op: Op) -> &'static str {
    OP_NAMES[op as u8 as usize - 1]
}

/// Pre-resolved histogram handles for the loop's hot paths, so recording a
/// latency never touches the registry lock.
///
/// The stage histograms tile a request's server-side life contiguously —
/// `parse` (frame start → queued/answered), `queue_wait` (queued →
/// admitted), `execute` (admitted → response enqueued), `write` (enqueued →
/// flushed to the kernel) — with shared boundary timestamps, so for every
/// request that flushes, the four segment durations sum exactly to its
/// `glds_request_duration_ns` total.
pub(crate) struct LoopObs {
    totals: [Arc<Histogram>; 6],
    parse: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    execute: Arc<Histogram>,
    write: Arc<Histogram>,
}

impl LoopObs {
    pub(crate) fn new() -> Self {
        let stage = |name| registry::histogram("glds_stage_duration_ns", &[("stage", name)]);
        LoopObs {
            totals: OP_NAMES
                .map(|name| registry::histogram("glds_request_duration_ns", &[("op", name)])),
            parse: stage("parse"),
            queue_wait: stage("queue_wait"),
            execute: stage("execute"),
            write: stage("write"),
        }
    }

    fn total(&self, op: Op) -> &Histogram {
        &self.totals[op as u8 as usize - 1]
    }

    /// Snapshot of the per-op total histogram (for `Status` summaries).
    pub(crate) fn total_snapshot(&self, op: Op) -> gld_obs::HistogramSnapshot {
        self.total(op).snapshot()
    }
}

/// Server-side timestamps a response carries into the write buffer, so the
/// flush path can attribute the `write` stage and the per-op total.
#[derive(Clone, Copy)]
enum RespTiming {
    /// Answered inline on the loop thread (ping/hello/status/refusals):
    /// `parse` covers frame start → enqueue.
    Inline { t0_ns: u64 },
    /// A codec response whose shard job completed: `parse` and `queue_wait`
    /// were recorded earlier; `execute` covers admit → enqueue.
    Completed { t0_ns: u64, admit_ns: u64 },
    /// A codec request answered without executing (deadline expiry, drain
    /// refusal): `parse` was recorded when it queued; `queue_wait` covers
    /// queued → enqueue and `execute` is skipped.
    Expired { t0_ns: u64, parsed_ns: u64 },
}

impl RespTiming {
    fn t0_ns(self) -> u64 {
        match self {
            RespTiming::Inline { t0_ns }
            | RespTiming::Completed { t0_ns, .. }
            | RespTiming::Expired { t0_ns, .. } => t0_ns,
        }
    }
}

/// One enqueued response awaiting its kernel flush, keyed by the absolute
/// enqueued-byte offset at which it ends.  Offsets are monotonic counters,
/// so buffer compaction in `flush_conn` never invalidates them.
struct WriteTrack {
    end: u64,
    enq_ns: u64,
    t0_ns: u64,
    op: Op,
    request_id: u64,
}

/// Per-connection token bucket limiting admissions of codec work.
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(capacity: u32, refill_per_sec: f64, now: Instant) -> Self {
        TokenBucket {
            tokens: capacity as f64,
            capacity: capacity as f64,
            refill_per_sec: refill_per_sec.max(0.0),
            last: now,
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One request parsed off a connection, waiting for its shard's window.
struct PendingRequest {
    conn: u64,
    request_id: u64,
    op: Op,
    request_bytes: usize,
    /// When `--op-deadline` is set: the instant after which this request is
    /// answered [`Status::DeadlineExceeded`] instead of being started.
    deadline: Option<Instant>,
    /// Frame-start timestamp ([`now_ns`]) — the request's latency origin.
    t0_ns: u64,
    /// When the request finished parsing and entered this queue; the
    /// `parse` stage was recorded against `t0_ns..parsed_ns`.
    parsed_ns: u64,
    job: ShardJob,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    parser: StreamParser,
    /// Serialised responses not yet accepted by the kernel; `out_pos` marks
    /// the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// Codec requests parsed off this connection and not yet answered
    /// (pending or admitted) — the per-connection outstanding bound.
    outstanding: usize,
    session: Session,
    bucket: Option<TokenBucket>,
    /// Peer sent EOF (half close): serve what is owed, then reap.
    read_closed: bool,
    /// A framing violation poisoned the stream: flush the error response,
    /// then close.
    fatal: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Last instant the kernel accepted response bytes (or the buffer was
    /// empty) — the stalled-writer clock.
    last_write_progress: Instant,
    /// Last instant the peer sent bytes — the `--idle-timeout` clock.
    last_activity: Instant,
    /// Monotonic count of response bytes ever appended to `out`.
    bytes_enqueued: u64,
    /// Monotonic count of response bytes the kernel has accepted.
    bytes_flushed: u64,
    /// Enqueued responses not yet fully flushed, in enqueue order.
    write_track: VecDeque<WriteTrack>,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Reads are paused while the connection is over either admission bound
    /// (or done reading for good).
    fn reads_paused(&self, max_outstanding: usize) -> bool {
        self.read_closed
            || self.fatal
            || self.outstanding >= max_outstanding
            || self.backlog() > READ_PAUSE_BACKLOG
    }

    fn desired_interest(&self, max_outstanding: usize, draining: bool) -> Interest {
        Interest {
            readable: !draining && !self.reads_paused(max_outstanding),
            writable: self.backlog() > 0,
        }
    }
}

/// The loop state: owned by exactly one thread for the server's lifetime.
pub(crate) struct EventLoop {
    shared: Arc<ServerShared>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Requests waiting for their shard's window, per shard.
    pending: Vec<VecDeque<PendingRequest>>,
    /// Loop-authoritative admitted-but-uncompleted count, per shard.
    in_flight: Vec<usize>,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    obs: LoopObs,
}

impl EventLoop {
    pub(crate) fn new(shared: Arc<ServerShared>, poller: Poller, listener: TcpListener) -> Self {
        let shards = shared.shards.len();
        EventLoop {
            shared,
            poller,
            listener: Some(listener),
            conns: HashMap::new(),
            pending: (0..shards).map(|_| VecDeque::new()).collect(),
            in_flight: vec![0; shards],
            next_token: FIRST_CONN_TOKEN,
            draining: false,
            drain_deadline: None,
            obs: LoopObs::new(),
        }
    }

    /// Runs until the graceful drain completes: listener closed, every
    /// admitted request completed, every response flushed (or its consumer
    /// timed out).
    pub(crate) fn run(mut self) {
        if let Some(listener) = &self.listener {
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            self.poller
                .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)
                .expect("register listener");
        }
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            let timeout = Some(self.shared.config.poll_interval);
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot serve; leave a postmortem timeline
                // and force the drain path.
                if !self.shared.is_shutdown() {
                    gld_obs::log_error!("eventloop", "poller failed, draining");
                    gld_obs::flight::dump("poller-failed");
                }
                self.shared.trigger_shutdown();
            }
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.shared.waker.drain(),
                    token => self.conn_ready(token, event),
                }
            }
            let touched = self.drain_completions();
            for conn in touched {
                self.pump_conn(conn);
            }
            for shard in 0..self.pending.len() {
                self.try_admit(shard);
            }
            self.expire_pending();
            if self.shared.is_shutdown() && !self.draining {
                self.begin_drain();
            }
            self.reap();
            if self.draining && self.conns.is_empty() && self.in_flight.iter().all(|&n| n == 0) {
                return;
            }
        }
    }

    // ── accept ──────────────────────────────────────────────────────────

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        drop(stream);
                        continue;
                    }
                    self.register_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient failures (ECONNABORTED, EMFILE...): level-
                // triggered readiness re-fires next tick, which is the
                // back-off.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let now = Instant::now();
        let conn = Conn {
            parser: StreamParser::new(self.shared.config.max_body),
            out: Vec::new(),
            out_pos: 0,
            outstanding: 0,
            session: Session::default(),
            bucket: self
                .shared
                .config
                .rate_limit
                .as_ref()
                .map(|rl| TokenBucket::new(rl.capacity, rl.refill_per_sec, now)),
            read_closed: false,
            fatal: false,
            interest: Interest::READABLE,
            last_write_progress: now,
            last_activity: now,
            bytes_enqueued: 0,
            bytes_flushed: 0,
            write_track: VecDeque::new(),
            stream,
        };
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            return;
        }
        self.shared.metrics.connection_opened();
        self.conns.insert(token, conn);
    }

    // ── per-connection I/O ──────────────────────────────────────────────

    fn conn_ready(&mut self, token: u64, event: Event) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if event.error {
            self.close_conn(token);
            return;
        }
        if event.readable || event.hangup {
            self.read_conn(token);
        }
        if event.writable {
            self.flush_conn(token);
        }
        self.pump_conn(token);
    }

    /// Reads until `WouldBlock`, EOF, or this connection's backpressure
    /// bound, parsing frames as the bytes arrive.
    fn read_conn(&mut self, token: u64) {
        let max_outstanding = self.shared.config.max_outstanding;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.reads_paused(max_outstanding) {
                return;
            }
            let result = if fail::active() {
                // The `service.read` failpoint sits between the socket and
                // the parser: injected errors flow through the match arms
                // below exactly like real kernel failures.
                match fail::check("service.read") {
                    Some(fail::Action::ErrIo) => {
                        Err(std::io::Error::other("injected fault at service.read"))
                    }
                    Some(fail::Action::ErrInterrupted) => {
                        Err(std::io::ErrorKind::Interrupted.into())
                    }
                    Some(fail::Action::Delay(d)) => {
                        std::thread::sleep(d);
                        conn.stream.read(&mut chunk)
                    }
                    Some(fail::Action::Corrupt) => conn.stream.read(&mut chunk).inspect(|&n| {
                        if n > 0 {
                            chunk[0] ^= 0xFF;
                        }
                    }),
                    None => conn.stream.read(&mut chunk),
                }
            } else {
                conn.stream.read(&mut chunk)
            };
            match result {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.parser.push(&chunk[..n]);
                    self.parse_frames(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Drains every complete frame the parser holds, respecting the
    /// connection's admission bounds between frames.
    fn parse_frames(&mut self, token: u64) {
        let max_outstanding = self.shared.config.max_outstanding;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.fatal || conn.outstanding >= max_outstanding {
                return;
            }
            match conn.parser.next_event() {
                StreamEvent::Incomplete => return,
                StreamEvent::Frame(raw, body) => self.process_frame(token, raw, body),
                StreamEvent::Fatal { error, request_id } => {
                    // The stream position is untrustworthy: answer best-
                    // effort (`Ping` is the neutral op for undecodable
                    // requests), flush, close.
                    self.shared.metrics.request_rejected_other();
                    gld_obs::log_warn!(
                        "eventloop",
                        conn = token,
                        req = request_id;
                        "framing violation, closing connection: {error}"
                    );
                    let status = protocol::status_for(&error);
                    let message = error.to_string();
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.fatal = true;
                    }
                    self.enqueue_response(
                        token,
                        Op::Ping,
                        0,
                        status,
                        request_id,
                        message.as_bytes(),
                        RespTiming::Inline { t0_ns: now_ns() },
                    );
                    return;
                }
            }
        }
    }

    fn process_frame(&mut self, token: u64, raw: RawFrameHeader, body: Vec<u8>) {
        // The latency origin every stage of this request measures from.
        let t0_ns = now_ns();
        let header = match raw.validate() {
            Ok(header) => header,
            Err(e) => {
                // Framing is intact (the parser consumed the declared body),
                // so an unknown op or status is answered and the connection
                // keeps serving — exactly the two-stage decode contract.
                self.shared.metrics.request_rejected_other();
                let status = protocol::status_for(&e);
                let message = e.to_string();
                self.enqueue_response(
                    token,
                    Op::Ping,
                    0,
                    status,
                    raw.request_id,
                    message.as_bytes(),
                    RespTiming::Inline { t0_ns },
                );
                return;
            }
        };
        if header.status != Status::Ok {
            self.shared.metrics.request_rejected_other();
            self.enqueue_response(
                token,
                header.op,
                0,
                Status::Malformed,
                header.request_id,
                b"request frames must carry status 0",
                RespTiming::Inline { t0_ns },
            );
            return;
        }
        match header.op {
            Op::Ping => {
                self.enqueue_response(
                    token,
                    Op::Ping,
                    0,
                    Status::Ok,
                    header.request_id,
                    &[],
                    RespTiming::Inline { t0_ns },
                );
            }
            Op::Hello => self.handle_hello(token, &header, &body, t0_ns),
            Op::Status => self.handle_status(token, &header, &body, t0_ns),
            Op::Shutdown => {
                gld_obs::log_info!("eventloop", conn = token; "wire shutdown requested");
                self.enqueue_response(
                    token,
                    Op::Shutdown,
                    0,
                    Status::Ok,
                    header.request_id,
                    &[],
                    RespTiming::Inline { t0_ns },
                );
                self.shared.trigger_shutdown();
            }
            Op::Compress | Op::Decompress => self.handle_codec_op(token, &header, body, t0_ns),
        }
    }

    fn handle_hello(&mut self, token: u64, header: &FrameHeader, body: &[u8], t0_ns: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match crate::server::negotiate_hello(&self.shared, header, body, &mut conn.session) {
            Ok((response, body)) => {
                let frame = protocol::encode_frame(&response, &body);
                self.enqueue_raw(
                    token,
                    Op::Hello,
                    header.request_id,
                    RespTiming::Inline { t0_ns },
                    frame,
                );
            }
            Err((status, message)) => {
                self.shared.metrics.request_rejected_other();
                self.enqueue_response(
                    token,
                    Op::Hello,
                    0,
                    status,
                    header.request_id,
                    message.as_bytes(),
                    RespTiming::Inline { t0_ns },
                );
            }
        }
    }

    fn handle_status(&mut self, token: u64, header: &FrameHeader, body: &[u8], t0_ns: u64) {
        if !body.is_empty() {
            self.shared.metrics.request_rejected_other();
            self.enqueue_response(
                token,
                Op::Status,
                0,
                Status::Malformed,
                header.request_id,
                b"status requests carry an empty body",
                RespTiming::Inline { t0_ns },
            );
            return;
        }
        let snapshot = self.shared.metrics.snapshot();
        // Capability-and-echo, per request: a client that set the summary
        // bit gets the trailer and the echoed bit; anyone else gets the
        // legacy body byte-for-byte.
        let wants_summaries = header.ext & protocol::EXT_STATUS_SUMMARIES != 0;
        let summaries = wants_summaries.then(|| protocol::StatusSummaries {
            rejected_other: snapshot.rejected_other as u64,
            ops: [
                Op::Hello,
                Op::Compress,
                Op::Decompress,
                Op::Ping,
                Op::Shutdown,
                Op::Status,
            ]
            .iter()
            .filter_map(|&op| {
                let hist = self.obs.total_snapshot(op);
                (hist.count > 0).then_some(protocol::OpLatency {
                    op: op as u8,
                    count: hist.count,
                    p50_ns: hist.p50(),
                    p99_ns: hist.p99(),
                })
            })
            .collect(),
        });
        let response = StatusResponse {
            connections_active: snapshot.connections_active as u64,
            connections_opened: snapshot.connections_opened as u64,
            requests_rejected: snapshot.requests_rejected as u64,
            rate_limited: snapshot.requests_rate_limited as u64,
            deadlines_exceeded: snapshot.deadlines_exceeded as u64,
            reaped_idle: snapshot.connections_reaped_idle as u64,
            faults_injected: fail::total_hits(),
            shards: snapshot
                .shards
                .iter()
                .map(|s| protocol::ShardStatus {
                    in_flight: s.in_flight as u64,
                    peak_in_flight: s.peak_in_flight as u64,
                    admitted: s.admitted as u64,
                    completed: s.completed as u64,
                    blocks: s.blocks as u64,
                    peak_resident_blocks: s.peak_resident_blocks as u64,
                    bytes_in: s.bytes_in as u64,
                    bytes_out: s.bytes_out as u64,
                })
                .collect(),
            summaries,
        };
        let body = response.encode_body();
        let echo = if wants_summaries {
            protocol::EXT_STATUS_SUMMARIES
        } else {
            0
        };
        let frame = protocol::encode_frame(
            &FrameHeader::response(
                Op::Status,
                0,
                Status::Ok,
                header.request_id,
                body.len() as u64,
            )
            .with_ext(echo),
            &body,
        );
        self.enqueue_raw(
            token,
            Op::Status,
            header.request_id,
            RespTiming::Inline { t0_ns },
            frame,
        );
    }

    /// Compress/decompress: rate limit, decode + precheck inline, then queue
    /// for the shard window.
    fn handle_codec_op(&mut self, token: u64, header: &FrameHeader, body: Vec<u8>, t0_ns: u64) {
        if self.draining {
            self.shared.metrics.request_rejected_other();
            self.enqueue_response(
                token,
                header.op,
                0,
                Status::ShuttingDown,
                header.request_id,
                b"server is draining",
                RespTiming::Inline { t0_ns },
            );
            return;
        }
        if fail::active() {
            // The `shard.submit` failpoint sits before shard hand-off: an
            // injected error refuses the request with a typed status (the
            // op was never admitted, so it is safe to retry); a delay
            // models a slow submission path.
            match fail::check("shard.submit") {
                Some(fail::Action::ErrIo) | Some(fail::Action::Corrupt) => {
                    self.shared.metrics.request_rejected_other();
                    self.enqueue_response(
                        token,
                        header.op,
                        0,
                        Status::Internal,
                        header.request_id,
                        b"injected fault at shard.submit",
                        RespTiming::Inline { t0_ns },
                    );
                    return;
                }
                Some(fail::Action::Delay(d)) => std::thread::sleep(d),
                Some(fail::Action::ErrInterrupted) | None => {}
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some(bucket) = &mut conn.bucket {
            if !bucket.try_take(Instant::now()) {
                self.shared.metrics.request_rate_limited();
                self.enqueue_response(
                    token,
                    header.op,
                    0,
                    Status::RateLimited,
                    header.request_id,
                    b"per-connection admission budget exhausted, retry later",
                    RespTiming::Inline { t0_ns },
                );
                return;
            }
        }
        let session = conn.session;
        let prepared = match header.op {
            Op::Compress => prepare_compress(&self.shared, header, &body, &session),
            _ => prepare_decompress(&self.shared, &body),
        };
        match prepared {
            Prepared::Refuse { status, message } => {
                self.shared.metrics.request_rejected_other();
                self.enqueue_response(
                    token,
                    header.op,
                    0,
                    status,
                    header.request_id,
                    message.as_bytes(),
                    RespTiming::Inline { t0_ns },
                );
            }
            Prepared::Job { shard, job } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.outstanding += 1;
                let deadline = self.shared.config.op_deadline.map(|d| Instant::now() + d);
                // The request is decoded and queued: close the `parse`
                // stage here so `queue_wait` starts at the same boundary.
                let parsed_ns = now_ns();
                self.obs.parse.record(parsed_ns.saturating_sub(t0_ns));
                span::record("req.parse", t0_ns, parsed_ns, token, header.request_id);
                self.pending[shard].push_back(PendingRequest {
                    conn: token,
                    request_id: header.request_id,
                    op: header.op,
                    request_bytes: body.len(),
                    deadline,
                    t0_ns,
                    parsed_ns,
                    job,
                });
                self.try_admit(shard);
            }
        }
    }

    // ── admission & completion ──────────────────────────────────────────

    /// Moves pending requests into the shard while its window has room.
    /// The loop thread is the only admitter, so the in-flight gauge can
    /// never exceed the window.
    fn try_admit(&mut self, shard: usize) {
        let window = self.shared.config.shard_window.max(1);
        while self.in_flight[shard] < window {
            let Some(request) = self.pending[shard].pop_front() else {
                return;
            };
            if !self.conns.contains_key(&request.conn) {
                // Connection died before its request was admitted; the
                // request dies with it, never charging the window.
                continue;
            }
            if request
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            {
                // The request sat out its execution deadline waiting for a
                // window slot: answer instead of starting stale work.
                self.expire_request(
                    request.conn,
                    request.op,
                    request.request_id,
                    request.t0_ns,
                    request.parsed_ns,
                );
                continue;
            }
            self.in_flight[shard] += 1;
            self.shared
                .metrics
                .shard(shard)
                .admit(request.request_bytes);
            let shared = Arc::clone(&self.shared);
            let PendingRequest {
                conn,
                request_id,
                op,
                job,
                t0_ns,
                parsed_ns,
                ..
            } = request;
            // Admission closes the `queue_wait` stage; `execute` starts at
            // the same boundary and closes when the completion is enqueued.
            let admit_ns = now_ns();
            self.obs
                .queue_wait
                .record(admit_ns.saturating_sub(parsed_ns));
            span::record("req.queue_wait", parsed_ns, admit_ns, conn, request_id);
            let wrapped: Box<dyn FnOnce() + Send> = Box::new(move || {
                let result = {
                    let _guard = gld_obs::span!("shard.execute", conn, request_id);
                    job()
                };
                shared.push_completion(Completion {
                    conn,
                    shard,
                    request_id,
                    op,
                    result,
                    t0_ns,
                    admit_ns,
                });
            });
            self.shared.shards[shard].push(wrapped);
        }
    }

    /// Answers one queued request with [`Status::DeadlineExceeded`] and
    /// releases its outstanding slot (it was never admitted, so no shard
    /// window is charged).
    fn expire_request(&mut self, token: u64, op: Op, request_id: u64, t0_ns: u64, parsed_ns: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.outstanding = conn.outstanding.saturating_sub(1);
        }
        self.shared.metrics.deadline_exceeded();
        gld_obs::log_debug!(
            "eventloop",
            conn = token,
            req = request_id,
            op = op_name(op);
            "request expired before admission"
        );
        self.enqueue_response(
            token,
            op,
            0,
            Status::DeadlineExceeded,
            request_id,
            b"request exceeded its execution deadline before a shard could start it",
            RespTiming::Expired { t0_ns, parsed_ns },
        );
    }

    /// Sweeps every shard's pending queue for requests past their deadline,
    /// answering them promptly instead of waiting for a window slot to
    /// surface them.  Runs each idle tick; a no-op without `--op-deadline`.
    fn expire_pending(&mut self) {
        if self.shared.config.op_deadline.is_none() {
            return;
        }
        let now = Instant::now();
        let mut expired = Vec::new();
        for queue in &mut self.pending {
            queue.retain(|request| {
                let overdue = request.deadline.is_some_and(|deadline| now >= deadline);
                if overdue {
                    expired.push((
                        request.conn,
                        request.op,
                        request.request_id,
                        request.t0_ns,
                        request.parsed_ns,
                    ));
                }
                !overdue
            });
        }
        for (token, op, request_id, t0_ns, parsed_ns) in expired {
            self.expire_request(token, op, request_id, t0_ns, parsed_ns);
            self.pump_conn(token);
        }
    }

    /// Applies every completion the workers have queued: release the window
    /// slot, account metrics, hand the response to its connection (which may
    /// be gone — the slot is released either way).  Returns the connections
    /// that received responses.
    fn drain_completions(&mut self) -> Vec<u64> {
        let completions = self.shared.take_completions();
        let mut touched = Vec::new();
        for completion in completions {
            let shard_metrics = self.shared.metrics.shard(completion.shard);
            if let Some(stream_metrics) = &completion.result.stream {
                shard_metrics.record_stream(stream_metrics);
            } else if completion.result.blocks > 0 {
                shard_metrics.record_blocks(completion.result.blocks);
            }
            shard_metrics.complete(completion.result.body.len());
            debug_assert!(self.in_flight[completion.shard] > 0);
            self.in_flight[completion.shard] -= 1;
            if let Some(conn) = self.conns.get_mut(&completion.conn) {
                debug_assert!(conn.outstanding > 0);
                conn.outstanding -= 1;
                self.enqueue_response(
                    completion.conn,
                    completion.op,
                    completion.result.codec,
                    completion.result.status,
                    completion.request_id,
                    &completion.result.body,
                    RespTiming::Completed {
                        t0_ns: completion.t0_ns,
                        admit_ns: completion.admit_ns,
                    },
                );
                touched.push(completion.conn);
            }
        }
        touched
    }

    // ── write path ──────────────────────────────────────────────────────

    #[allow(clippy::too_many_arguments)]
    fn enqueue_response(
        &mut self,
        token: u64,
        op: Op,
        codec: u8,
        status: Status,
        request_id: u64,
        body: &[u8],
        timing: RespTiming,
    ) {
        let header = FrameHeader::response(op, codec, status, request_id, body.len() as u64);
        let frame = protocol::encode_frame(&header, body);
        self.enqueue_raw(token, op, request_id, timing, frame);
    }

    /// Appends a serialised response frame to the connection's out buffer,
    /// closing the stage that ended here (`parse` for inline answers,
    /// `execute` for completions, `queue_wait` for expiries) and opening
    /// the `write` stage at the same boundary.
    fn enqueue_raw(
        &mut self,
        token: u64,
        op: Op,
        request_id: u64,
        timing: RespTiming,
        frame: Vec<u8>,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let enq_ns = now_ns();
        match timing {
            RespTiming::Inline { t0_ns } => {
                self.obs.parse.record(enq_ns.saturating_sub(t0_ns));
                span::record("req.parse", t0_ns, enq_ns, token, request_id);
            }
            RespTiming::Completed { admit_ns, .. } => {
                self.obs.execute.record(enq_ns.saturating_sub(admit_ns));
                span::record("req.execute", admit_ns, enq_ns, token, request_id);
            }
            RespTiming::Expired { parsed_ns, .. } => {
                self.obs.queue_wait.record(enq_ns.saturating_sub(parsed_ns));
                span::record("req.queue_wait", parsed_ns, enq_ns, token, request_id);
            }
        }
        conn.bytes_enqueued += frame.len() as u64;
        conn.write_track.push_back(WriteTrack {
            end: conn.bytes_enqueued,
            enq_ns,
            t0_ns: timing.t0_ns(),
            op,
            request_id,
        });
        conn.out.extend_from_slice(&frame);
        self.flush_conn(token);
    }

    /// Writes buffered response bytes until the kernel pushes back.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut broken = false;
        while conn.out_pos < conn.out.len() {
            let result = if fail::active() {
                // The `service.write` failpoint mirrors `service.read`:
                // injected outcomes take the same arms as kernel ones.
                match fail::check("service.write") {
                    Some(fail::Action::ErrIo) => {
                        Err(std::io::Error::other("injected fault at service.write"))
                    }
                    Some(fail::Action::ErrInterrupted) => {
                        Err(std::io::ErrorKind::Interrupted.into())
                    }
                    Some(fail::Action::Delay(d)) => {
                        std::thread::sleep(d);
                        conn.stream.write(&conn.out[conn.out_pos..])
                    }
                    Some(fail::Action::Corrupt) => {
                        let at = conn.out_pos;
                        conn.out[at] ^= 0xFF;
                        conn.stream.write(&conn.out[conn.out_pos..])
                    }
                    None => conn.stream.write(&conn.out[conn.out_pos..]),
                }
            } else {
                conn.stream.write(&conn.out[conn.out_pos..])
            };
            match result {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.bytes_flushed += n as u64;
                    conn.last_write_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        // Every response the kernel has now fully accepted closes its
        // `write` stage and records the per-op total (both ending at this
        // flush instant, so the four stages tile the total exactly).
        if conn
            .write_track
            .front()
            .is_some_and(|t| t.end <= conn.bytes_flushed)
        {
            let flush_ns = now_ns();
            while let Some(track) = conn.write_track.front() {
                if track.end > conn.bytes_flushed {
                    break;
                }
                let track = conn.write_track.pop_front().expect("front exists");
                self.obs.write.record(flush_ns.saturating_sub(track.enq_ns));
                self.obs
                    .total(track.op)
                    .record(flush_ns.saturating_sub(track.t0_ns));
                span::record("req.write", track.enq_ns, flush_ns, token, track.request_id);
            }
        }
        if broken {
            self.close_conn(token);
            return;
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            conn.last_write_progress = Instant::now();
        } else if conn.out_pos > READ_PAUSE_BACKLOG && conn.out_pos >= conn.out.len() / 2 {
            // Reclaim the flushed prefix so a long-lived pipelined
            // connection's buffer does not grow monotonically.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    }

    /// Re-evaluates a connection after any state change: parse newly
    /// unblocked frames, flush, and sync poller interest.
    fn pump_conn(&mut self, token: u64) {
        self.parse_frames(token);
        let max_outstanding = self.shared.config.max_outstanding;
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = conn.desired_interest(max_outstanding, draining);
        if desired != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = desired;
            }
        }
    }

    // ── lifecycle ───────────────────────────────────────────────────────

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.shared.metrics.connection_closed();
        // Unadmitted requests die with the connection (admitted ones finish
        // on their shard; their completions release the slots).
        for queue in &mut self.pending {
            queue.retain(|p| p.conn != token);
        }
    }

    /// Closes finished connections, reaps stalled writers, and — with
    /// `--idle-timeout` — reaps silent keepalives that would otherwise hold
    /// their fd forever.
    fn reap(&mut self) {
        let now = Instant::now();
        let write_timeout = self.shared.config.write_timeout;
        let idle_timeout = self.shared.config.idle_timeout;
        let force = self
            .drain_deadline
            .map(|deadline| now >= deadline)
            .unwrap_or(false);
        let done: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter_map(|(&token, conn)| {
                let idle = conn.outstanding == 0 && conn.backlog() == 0;
                let finished = idle && (conn.read_closed || conn.fatal || self.draining);
                let stalled = conn.backlog() > 0
                    && now.saturating_duration_since(conn.last_write_progress) > write_timeout;
                if finished || stalled || force {
                    return Some((token, false));
                }
                // The idle-timeout arm: a connection owed nothing (no
                // outstanding work, no unflushed bytes) whose peer has been
                // silent past the configured timeout.
                let idle_expired = idle
                    && idle_timeout.is_some_and(|timeout| {
                        now.saturating_duration_since(conn.last_activity) > timeout
                    });
                idle_expired.then_some((token, true))
            })
            .collect();
        for (token, idle_reaped) in done {
            if idle_reaped {
                self.shared.metrics.connection_reaped_idle();
            }
            self.close_conn(token);
        }
    }

    /// Starts the graceful drain: close the listener, refuse unadmitted
    /// requests, stop reading, let admitted work finish and flush.
    fn begin_drain(&mut self) {
        gld_obs::log_info!(
            "eventloop",
            conns = self.conns.len();
            "draining: listener closed, unadmitted work refused"
        );
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.shared.config.write_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
            // Dropping the listener closes the socket: late connects are
            // refused by the kernel, not left dangling.
        }
        let pending: Vec<PendingRequest> = self
            .pending
            .iter_mut()
            .flat_map(|queue| queue.drain(..))
            .collect();
        for request in pending {
            if let Some(conn) = self.conns.get_mut(&request.conn) {
                conn.outstanding -= 1;
            }
            self.shared.metrics.request_rejected_other();
            self.enqueue_response(
                request.conn,
                request.op,
                0,
                Status::ShuttingDown,
                request.request_id,
                b"server is draining",
                RespTiming::Expired {
                    t0_ns: request.t0_ns,
                    parsed_ns: request.parsed_ns,
                },
            );
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.pump_conn(token);
        }
    }
}
