//! Criterion benchmarks for the VAE: rate–distortion training step
//! (forward + backward) and inference-time latent quantisation / decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use gld_nn::prelude::*;
use gld_tensor::TensorRng;
use gld_vae::{Vae, VaeConfig};
use std::hint::black_box;

fn bench_vae(c: &mut Criterion) {
    let vae = Vae::new(VaeConfig::default());
    let mut rng = TensorRng::new(4);
    let frames = rng.rand_uniform(&[2, 1, 16, 16], -0.5, 0.5);
    let latents = vae.quantize_latent(&frames);

    let mut group = c.benchmark_group("vae");
    group.sample_size(10);
    group.bench_function("rd_loss_forward_backward_b2_16x16", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let mut step_rng = TensorRng::new(1);
            let (loss, _) = vae.rd_loss(&tape, black_box(&frames), &mut step_rng);
            black_box(loss.backward());
            vae.parameters().zero_grad();
        })
    });
    group.bench_function("quantize_latent_b2_16x16", |bench| {
        bench.iter(|| black_box(vae.quantize_latent(black_box(&frames))))
    });
    group.bench_function("decode_latent_b2", |bench| {
        bench.iter(|| black_box(vae.decode_latent(black_box(&latents))))
    });
    group.finish();
}

criterion_group!(benches, bench_vae);
criterion_main!(benches);
